/**
 * @file
 * The wildlife-monitoring case study (paper Sec. 3.2): camera sensors
 * on OpenChirp connectivity detecting rare animals. Supplies the
 * energy constants behind Figs. 1 and 2 and helpers that evaluate the
 * four systems the figures compare (always-send, ideal, naive local
 * inference, SONIC & TAILS) across an accuracy sweep.
 */

#ifndef SONIC_APP_WILDLIFE_HH
#define SONIC_APP_WILDLIFE_HH

#include <vector>

#include "arch/energy_profile.hh"
#include "genesis/impj.hh"
#include "util/types.hh"

namespace sonic::app
{

/** Payload bytes of one 28x28 8-bit image over the uplink. */
constexpr f64 kWildlifeImageBytes = 784.0;

/** Payload bytes of one filtered inference result. */
constexpr f64 kWildlifeResultBytes = 8.0;

/** Case-study constants (Sec. 3.2). */
struct WildlifeParams
{
    f64 baseRate = 0.05;   ///< hedgehogs are reclusive
    f64 senseJ = 10e-3;    ///< low-power camera shot
    f64 commJ = 23.0;      ///< one image over OpenChirp
    /** Sending only the inference result shrinks Ecomm by 98x. */
    f64 resultCommShrink = 98.0;

    /** Inference energies; defaults are the paper's measured values
     * (Einfer_naive ~198 mJ on Tile-8, Einfer_TAILS ~26 mJ). Benches
     * override these with our prototype's measured energies. */
    f64 naiveInferJ = 198e-3;
    f64 tailsInferJ = 26e-3;

    /**
     * Derive the communication constants from a radio energy profile
     * (pipeline::attemptEnergyJ over the image and result payloads)
     * instead of the paper's rounded numbers: commJ is one full-image
     * TX attempt, resultCommShrink the image/result attempt-energy
     * ratio (~97x for OpenChirp — the paper rounds to 98x).
     */
    static WildlifeParams fromRadio(const arch::EnergyProfile &radio);
};

/** One row of the Fig. 1 / Fig. 2 accuracy sweep. */
struct WildlifePoint
{
    f64 accuracy = 0.0;   ///< tp = tn = accuracy
    f64 alwaysSend = 0.0; ///< Eq. 1
    f64 ideal = 0.0;      ///< Eq. 2
    f64 naive = 0.0;      ///< Eq. 3 with naive Einfer
    f64 sonicTails = 0.0; ///< Eq. 3 with TAILS Einfer
};

/**
 * Sweep accuracy in [0, 1]; send_result_only selects Fig. 2's regime
 * (Ecomm / resultCommShrink for the local-inference systems AND the
 * ideal system).
 */
std::vector<WildlifePoint> sweepWildlife(const WildlifeParams &params,
                                         u32 points,
                                         bool send_result_only);

/**
 * The Sec. 3.1 communication-vs-local-inference comparison: seconds to
 * get one MNIST-sized reading to the cloud over OpenChirp vs seconds
 * to infer locally, at the given harvest power. The image goes out as
 * eight-byte packets; each packet's energy is one radio TX attempt
 * (wake + payload + ACK listen) under the OpenChirp energy profile.
 */
struct OffloadComparison
{
    f64 offloadSeconds = 0.0;
    f64 localSeconds = 0.0;
    f64 speedup = 0.0;
};

OffloadComparison offloadVsLocal(f64 image_bytes, f64 local_infer_j,
                                 f64 harvest_watts);

} // namespace sonic::app

#endif // SONIC_APP_WILDLIFE_HH
