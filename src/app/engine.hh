/**
 * @file
 * The experiment engine: executes RunSpecs — single-shot or whole
 * SweepPlan grids — over a worker-thread pool, resolving workloads by
 * name through the ModelZoo's deterministic cache (teacher/compressed
 * networks, datasets), and streams finished results into pluggable
 * sinks.
 *
 * Determinism contract: every spec runs on its own freshly-built
 * Device against immutable cached workloads, so a sweep's results are
 * bit-identical regardless of the thread count, and sinks always
 * receive records in plan-expansion order (the engine holds back
 * out-of-order completions until the gap fills).
 */

#ifndef SONIC_APP_ENGINE_HH
#define SONIC_APP_ENGINE_HH

#include <iosfwd>
#include <vector>

#include "app/sweep.hh"

namespace sonic::app
{

/** One finished grid point: where it was in the plan and what ran. */
struct SweepRecord
{
    u32 planIndex = 0; ///< position in SweepPlan::expand() order
    RunSpec spec;
    ExperimentResult result;
};

/**
 * Receives records in plan order as they become available. Sink
 * methods are never called concurrently (the engine serializes them),
 * so implementations need no locking of their own.
 */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;

    /** Called once before any record, with the expanded plan size. */
    virtual void begin(u64 totalRecords) { (void)totalRecords; }

    /** Called once per record, in plan order. */
    virtual void add(const SweepRecord &record) = 0;

    /** Called once after the last record. */
    virtual void end() {}
};

/** Collects records into memory (what Engine::run returns). */
class MemorySink : public ResultSink
{
  public:
    void begin(u64 totalRecords) override;
    void add(const SweepRecord &record) override;

    const std::vector<SweepRecord> &records() const { return records_; }
    std::vector<SweepRecord> take() { return std::move(records_); }

  private:
    std::vector<SweepRecord> records_;
};

/** Streams one CSV row per record (header first). */
class CsvSink : public ResultSink
{
  public:
    explicit CsvSink(std::ostream &os) : os_(os) {}

    void begin(u64 totalRecords) override;
    void add(const SweepRecord &record) override;

  private:
    std::ostream &os_;
};

/**
 * Streams a JSON array of record objects, including the per-layer
 * breakdown, per-op energies and logits (the BENCH_*.json trajectory
 * format).
 */
class JsonSink : public ResultSink
{
  public:
    explicit JsonSink(std::ostream &os) : os_(os) {}

    void begin(u64 totalRecords) override;
    void add(const SweepRecord &record) override;
    void end() override;

  private:
    std::ostream &os_;
    bool first_ = true;
};

/** Engine configuration. */
struct EngineOptions
{
    /** Worker threads for sweeps; 0 = hardware concurrency. */
    u32 threads = 0;

    /** Heartbeat coordinates/s + ETA line on stderr while the sweep
     * runs (sonic_sweep --progress). */
    bool progress = false;
};

/**
 * Executes experiments. Workload artifacts come from the process-wide
 * ModelZoo cache (dnn/zoo.hh): any registered model is sweepable by
 * name, built lazily once, and shared by every engine.
 */
class Engine
{
  public:
    explicit Engine(EngineOptions options = {});
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** @name Zoo-backed workload artifacts (deterministic, cached;
     * unknown names are fatal with the registered list). */
    /// @{
    const dnn::ModelEntry &model(const dnn::NetRef &net);
    const dnn::NetworkSpec &teacher(const dnn::NetRef &net);
    const dnn::NetworkSpec &compressed(const dnn::NetRef &net);
    const dnn::Dataset &dataset(const dnn::NetRef &net);
    /// @}

    /** Run one inference experiment on the calling thread. */
    ExperimentResult runOne(const RunSpec &spec);

    /**
     * Expand and execute a plan over the worker pool. Records are
     * streamed to the sinks in plan order and also returned.
     */
    std::vector<SweepRecord> run(const SweepPlan &plan,
                                 const std::vector<ResultSink *> &sinks
                                 = {});

    /** The worker-thread count a sweep will use. */
    u32 threadCount() const;

  private:
    EngineOptions options_;
};

} // namespace sonic::app

#endif // SONIC_APP_ENGINE_HH
