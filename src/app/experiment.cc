#include "app/experiment.hh"

#include "util/logging.hh"

namespace sonic::app
{

const char *
powerName(PowerKind kind)
{
    switch (kind) {
      case PowerKind::Continuous: return "Continuous";
      case PowerKind::Cap50mF: return "50mF";
      case PowerKind::Cap1mF: return "1mF";
      case PowerKind::Cap100uF: return "100uF";
    }
    return "?";
}

bool
powerFromName(const std::string &name, PowerKind *out)
{
    for (const PowerKind kind : kAllPower) {
        if (name == powerName(kind)) {
            *out = kind;
            return true;
        }
    }
    return false;
}

const char *
profileName(ProfileVariant variant)
{
    switch (variant) {
      case ProfileVariant::Standard: return "standard";
      case ProfileVariant::NoLea: return "no-lea";
      case ProfileVariant::NoDma: return "no-dma";
    }
    return "?";
}

bool
profileFromName(const std::string &name, ProfileVariant *out)
{
    for (const ProfileVariant variant : kAllProfiles) {
        if (name == profileName(variant)) {
            *out = variant;
            return true;
        }
    }
    return false;
}

std::unique_ptr<arch::PowerSupply>
makePower(PowerKind kind)
{
    switch (kind) {
      case PowerKind::Continuous:
        return std::make_unique<arch::ContinuousPower>();
      case PowerKind::Cap50mF:
        return std::make_unique<arch::CapacitorPower>(50e-3,
                                                      kHarvestWatts);
      case PowerKind::Cap1mF:
        return std::make_unique<arch::CapacitorPower>(1e-3,
                                                      kHarvestWatts);
      case PowerKind::Cap100uF:
        return std::make_unique<arch::CapacitorPower>(100e-6,
                                                      kHarvestWatts);
    }
    panic("bad PowerKind");
}

std::unique_ptr<arch::PowerSupply>
makeSupply(const RunSpec &spec)
{
    if (!spec.failureSchedule.empty())
        return std::make_unique<arch::SchedulePower>(
            spec.failureSchedule);
    if (!spec.environment.empty())
        return env::EnvRegistry::instance().make(spec.environment,
                                                 spec.seed);
    return makePower(spec.power);
}

arch::EnergyProfile
makeProfile(ProfileVariant variant)
{
    switch (variant) {
      case ProfileVariant::Standard:
        return arch::EnergyProfile::msp430fr5994();
      case ProfileVariant::NoLea:
        return arch::EnergyProfile::msp430fr5994NoLea();
      case ProfileVariant::NoDma:
        return arch::EnergyProfile::msp430fr5994NoDma();
    }
    panic("bad ProfileVariant");
}

} // namespace sonic::app
