#include "app/experiment.hh"

#include <map>

#include "arch/memory.hh"
#include "dnn/device_net.hh"
#include "tensor/nnref.hh"
#include "util/logging.hh"

namespace sonic::app
{

const char *
powerName(PowerKind kind)
{
    switch (kind) {
      case PowerKind::Continuous: return "Continuous";
      case PowerKind::Cap50mF: return "50mF";
      case PowerKind::Cap1mF: return "1mF";
      case PowerKind::Cap100uF: return "100uF";
    }
    return "?";
}

std::unique_ptr<arch::PowerSupply>
makePower(PowerKind kind)
{
    switch (kind) {
      case PowerKind::Continuous:
        return std::make_unique<arch::ContinuousPower>();
      case PowerKind::Cap50mF:
        return std::make_unique<arch::CapacitorPower>(50e-3,
                                                      kHarvestWatts);
      case PowerKind::Cap1mF:
        return std::make_unique<arch::CapacitorPower>(1e-3,
                                                      kHarvestWatts);
      case PowerKind::Cap100uF:
        return std::make_unique<arch::CapacitorPower>(100e-6,
                                                      kHarvestWatts);
    }
    panic("bad PowerKind");
}

const dnn::NetworkSpec &
cachedTeacher(dnn::NetId net)
{
    static std::map<dnn::NetId, dnn::NetworkSpec> cache;
    auto it = cache.find(net);
    if (it == cache.end())
        it = cache.emplace(net, dnn::buildTeacher(net)).first;
    return it->second;
}

const dnn::NetworkSpec &
cachedCompressed(dnn::NetId net)
{
    static std::map<dnn::NetId, dnn::NetworkSpec> cache;
    auto it = cache.find(net);
    if (it == cache.end())
        it = cache.emplace(net, dnn::buildCompressed(net)).first;
    return it->second;
}

const dnn::Dataset &
cachedDataset(dnn::NetId net)
{
    static std::map<dnn::NetId, dnn::Dataset> cache;
    auto it = cache.find(net);
    if (it == cache.end()) {
        it = cache.emplace(net,
                           dnn::makeDataset(cachedTeacher(net), 64))
                 .first;
    }
    return it->second;
}

ExperimentResult
runExperiment(const RunSpec &spec)
{
    arch::EnergyProfile profile;
    switch (spec.profile) {
      case ProfileVariant::Standard:
        profile = arch::EnergyProfile::msp430fr5994();
        break;
      case ProfileVariant::NoLea:
        profile = arch::EnergyProfile::msp430fr5994NoLea();
        break;
      case ProfileVariant::NoDma:
        profile = arch::EnergyProfile::msp430fr5994NoDma();
        break;
    }

    arch::Device dev(profile, makePower(spec.power));
    const dnn::NetworkSpec &net_spec = cachedCompressed(spec.net);
    dnn::DeviceNetwork net(dev, net_spec);

    const dnn::Dataset &data = cachedDataset(spec.net);
    const auto &sample = data[spec.sampleIndex % data.size()];
    net.loadInput(dnn::DeviceNetwork::quantizeInput(sample.input));

    const auto run = kernels::runInference(net, spec.impl);

    ExperimentResult result;
    result.completed = run.completed;
    result.nonTerminating = run.nonTerminating;
    result.reboots = run.reboots;
    result.tasksExecuted = run.tasksExecuted;
    result.liveSeconds = dev.liveSeconds();
    result.deadSeconds = dev.deadSeconds();
    result.totalSeconds = dev.totalSeconds();
    result.energyJ = dev.consumedJoules();
    result.harvestedJ = dev.power().harvestedNj() * 1e-9;

    const auto &stats = dev.stats();
    const f64 hz = dev.config().clockHz;
    for (u16 l = 0; l < stats.numLayers(); ++l) {
        LayerBreakdown row;
        row.name = stats.layerName(l);
        row.kernelSeconds =
            static_cast<f64>(
                stats.bucket(l, arch::Part::Kernel).totalCycles())
            / hz;
        row.controlSeconds =
            static_cast<f64>(
                stats.bucket(l, arch::Part::Control).totalCycles())
            / hz;
        row.energyJ = stats.layerNanojoules(l) * 1e-9;
        result.layers.push_back(row);
    }
    for (u32 o = 0; o < arch::kNumOps; ++o) {
        const auto op = static_cast<arch::Op>(o);
        const f64 joules = stats.opNanojoules(op) * 1e-9;
        if (joules > 0.0)
            result.energyByOp[std::string(arch::opName(op))] = joules;
    }

    if (run.completed) {
        result.logits = run.logits;
        u32 best = 0;
        for (u32 i = 1; i < result.logits.size(); ++i)
            if (result.logits[i] > result.logits[best])
                best = i;
        result.predictedClass = best;
    }
    return result;
}

} // namespace sonic::app
