#include "app/engine.hh"

#include <atomic>
#include <condition_variable>
#include <ostream>
#include <sstream>
#include <thread>

#include "arch/memory.hh"
#include "dnn/device_net.hh"
#include "util/fmt.hh"
#include "util/progress.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace sonic::app
{

// --- Sinks ----------------------------------------------------------

void
MemorySink::begin(u64 totalRecords)
{
    records_.reserve(records_.size() + totalRecords);
}

void
MemorySink::add(const SweepRecord &record)
{
    records_.push_back(record);
}

void
CsvSink::begin(u64)
{
    os_ << "planIndex,net,impl,power,environment,profile,sample,seed,"
           "status,"
           "reboots,tasksExecuted,liveSeconds,deadSeconds,"
           "totalSeconds,energyJ,harvestedJ,predictedClass,"
           "tailsTileWords,scheduleLen,scheduleFired\n";
}

void
CsvSink::add(const SweepRecord &record)
{
    const auto &r = record.result;
    // f64 fields go through fmtF64 (shortest round-trip digits): a
    // fixed precision(12) dropped mantissa bits, so CSV could never be
    // a lossless artifact. See util/fmt.hh.
    std::ostringstream row;
    row << record.planIndex << ',' << csvQuote(record.spec.net) << ','
        << csvQuote(std::string(kernels::implName(record.spec.impl)))
        << ',' << powerName(record.spec.power) << ','
        << csvQuote(record.spec.environment.label()) << ','
        << profileName(record.spec.profile) << ','
        << record.spec.sampleIndex << ',' << record.spec.seed << ','
        << (r.completed ? "ok" : (r.nonTerminating ? "dnf" : "fail"))
        << ',' << r.reboots << ',' << r.tasksExecuted << ','
        << fmtF64(r.liveSeconds) << ',' << fmtF64(r.deadSeconds) << ','
        << fmtF64(r.totalSeconds) << ',' << fmtF64(r.energyJ) << ','
        << fmtF64(r.harvestedJ) << ',' << r.predictedClass << ','
        << r.tailsTileWords << ','
        << record.spec.failureSchedule.size() << ','
        << r.scheduleFired << '\n';
    os_ << row.str();
}

void
JsonSink::begin(u64)
{
    os_ << "[";
    first_ = true;
}

void
JsonSink::add(const SweepRecord &record)
{
    const auto &r = record.result;
    std::ostringstream obj;
    obj.precision(17);
    obj << (first_ ? "\n" : ",\n");
    first_ = false;
    obj << "  {\"planIndex\": " << record.planIndex
        << ", \"net\": \"" << jsonEscape(record.spec.net)
        << "\", \"impl\": \""
        << jsonEscape(std::string(
               kernels::implName(record.spec.impl)))
        << "\", \"power\": \"" << powerName(record.spec.power)
        << "\", \"environment\": \""
        << jsonEscape(record.spec.environment.label())
        << "\", \"profile\": \"" << profileName(record.spec.profile)
        << "\", \"sample\": " << record.spec.sampleIndex
        << ", \"seed\": " << record.spec.seed
        << ", \"completed\": " << (r.completed ? "true" : "false")
        << ", \"nonTerminating\": "
        << (r.nonTerminating ? "true" : "false")
        << ", \"reboots\": " << r.reboots
        << ", \"tasksExecuted\": " << r.tasksExecuted
        << ", \"liveSeconds\": " << r.liveSeconds
        << ", \"deadSeconds\": " << r.deadSeconds
        << ", \"totalSeconds\": " << r.totalSeconds
        << ", \"energyJ\": " << r.energyJ
        << ", \"harvestedJ\": " << r.harvestedJ
        << ", \"predictedClass\": " << r.predictedClass
        << ", \"tailsTileWords\": " << r.tailsTileWords;

    if (!record.spec.failureSchedule.empty()) {
        obj << ", \"failureSchedule\": [";
        for (u64 i = 0; i < record.spec.failureSchedule.size(); ++i)
            obj << (i ? ", " : "") << record.spec.failureSchedule[i];
        obj << "], \"scheduleFired\": " << r.scheduleFired;
    }
    if (record.spec.captureNvmDigests) {
        obj << ", \"finalNvmDigest\": " << r.finalNvmDigest
            << ", \"rebootDigests\": [";
        for (u64 i = 0; i < r.rebootDigests.size(); ++i)
            obj << (i ? ", " : "") << r.rebootDigests[i];
        obj << "]";
    }

    obj << ", \"layers\": [";
    for (u64 i = 0; i < r.layers.size(); ++i) {
        const auto &layer = r.layers[i];
        obj << (i ? ", " : "") << "{\"name\": \""
            << jsonEscape(layer.name)
            << "\", \"kernelSeconds\": " << layer.kernelSeconds
            << ", \"controlSeconds\": " << layer.controlSeconds
            << ", \"energyJ\": " << layer.energyJ << "}";
    }
    obj << "]";

    obj << ", \"energyByOp\": {";
    bool firstOp = true;
    for (const auto &[op, joules] : r.energyByOp) {
        obj << (firstOp ? "" : ", ") << "\"" << jsonEscape(op)
            << "\": " << joules;
        firstOp = false;
    }
    obj << "}";

    obj << ", \"logits\": [";
    for (u64 i = 0; i < r.logits.size(); ++i)
        obj << (i ? ", " : "") << r.logits[i];
    obj << "]}";
    os_ << obj.str();
}

void
JsonSink::end()
{
    os_ << "\n]\n";
}

// --- Engine ---------------------------------------------------------

Engine::Engine(EngineOptions options) : options_(options) {}

Engine::~Engine() = default;

u32
Engine::threadCount() const
{
    if (options_.threads > 0)
        return options_.threads;
    const u32 hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

const dnn::ModelEntry &
Engine::model(const dnn::NetRef &net)
{
    return dnn::ModelZoo::instance().get(net);
}

const dnn::NetworkSpec &
Engine::teacher(const dnn::NetRef &net)
{
    return model(net).teacher();
}

const dnn::NetworkSpec &
Engine::compressed(const dnn::NetRef &net)
{
    return model(net).compressed();
}

const dnn::Dataset &
Engine::dataset(const dnn::NetRef &net)
{
    return model(net).dataset();
}

ExperimentResult
Engine::runOne(const RunSpec &spec)
{
    // Supply precedence (makeSupply): an explicit failure-index trace
    // overrides the environment, which overrides the power-kind axis.
    std::unique_ptr<arch::PowerSupply> psu = makeSupply(spec);
    const auto *schedule_psu = spec.failureSchedule.empty()
        ? nullptr
        : static_cast<const arch::SchedulePower *>(psu.get());

    arch::Device dev(makeProfile(spec.profile), std::move(psu));
    ExperimentResult result;
    if (spec.captureNvmDigests) {
        dev.setRebootHook([&result](arch::Device &d, u64) {
            result.rebootDigests.push_back(d.nvmDigest());
        });
    }
    const dnn::NetworkSpec &net_spec = compressed(spec.net);
    dnn::DeviceNetwork net(dev, net_spec);

    const dnn::Dataset &data = dataset(spec.net);
    const auto &sample = data[spec.sampleIndex % data.size()];
    net.loadInput(dnn::DeviceNetwork::quantizeInput(sample.input));

    const auto run = kernels::runInference(net, spec.impl);

    result.completed = run.completed;
    result.nonTerminating = run.nonTerminating;
    result.reboots = run.reboots;
    result.tasksExecuted = run.tasksExecuted;
    result.tailsTileWords = run.calibTileWords;
    result.liveSeconds = dev.liveSeconds();
    result.deadSeconds = dev.deadSeconds();
    result.totalSeconds = dev.totalSeconds();
    result.energyJ = dev.consumedJoules();
    result.harvestedJ = dev.power().harvestedNj() * 1e-9;
    if (schedule_psu != nullptr)
        result.scheduleFired = schedule_psu->firedCount();
    if (spec.captureNvmDigests)
        result.finalNvmDigest = dev.nvmDigest();

    const auto &stats = dev.stats();
    for (u32 o = 0; o < arch::kNumOps; ++o)
        result.opInstances += stats.opCount(static_cast<arch::Op>(o));
    const f64 hz = dev.config().clockHz;
    for (u16 l = 0; l < stats.numLayers(); ++l) {
        LayerBreakdown row;
        row.name = stats.layerName(l);
        row.kernelSeconds =
            static_cast<f64>(
                stats.bucket(l, arch::Part::Kernel).totalCycles())
            / hz;
        row.controlSeconds =
            static_cast<f64>(
                stats.bucket(l, arch::Part::Control).totalCycles())
            / hz;
        row.energyJ = stats.layerNanojoules(l) * 1e-9;
        result.layers.push_back(row);
    }
    for (u32 o = 0; o < arch::kNumOps; ++o) {
        const auto op = static_cast<arch::Op>(o);
        const f64 joules = stats.opNanojoules(op) * 1e-9;
        if (joules > 0.0)
            result.energyByOp[std::string(arch::opName(op))] = joules;
    }

    if (run.completed) {
        result.logits = run.logits;
        u32 best = 0;
        for (u32 i = 1; i < result.logits.size(); ++i)
            if (result.logits[i] > result.logits[best])
                best = i;
        result.predictedClass = best;
    }
    return result;
}

std::vector<SweepRecord>
Engine::run(const SweepPlan &plan,
            const std::vector<ResultSink *> &sinks)
{
    const auto specs = plan.expand();
    const u64 total = specs.size();

    // Warm the zoo cache up front, single-threaded, so workers only
    // ever read immutable artifacts (and so cache construction order —
    // hence content — is independent of the thread count).
    for (const auto &net : plan.netAxis()) {
        compressed(net);
        dataset(net);
    }

    MemorySink memory;
    std::vector<ResultSink *> allSinks;
    allSinks.push_back(&memory);
    for (auto *sink : sinks)
        if (sink != nullptr)
            allSinks.push_back(sink);

    for (auto *sink : allSinks)
        sink->begin(total);

    const u32 workers = static_cast<u32>(
        std::min<u64>(threadCount(), total ? total : 1));

    std::atomic<u64> specs_done{0};
    util::ProgressMeter progress("sweep", "coordinates", total,
                                 &specs_done, options_.progress);

    if (workers <= 1) {
        for (u64 i = 0; i < total; ++i) {
            SweepRecord record;
            record.planIndex = static_cast<u32>(i);
            record.spec = specs[i];
            record.result = runOne(specs[i]);
            specs_done.fetch_add(1, std::memory_order_relaxed);
            for (auto *sink : allSinks)
                sink->add(record);
        }
    } else {
        std::vector<std::unique_ptr<SweepRecord>> done(total);
        std::atomic<u64> next{0};
        std::mutex emitMutex;
        u64 emitted = 0;

        auto workerLoop = [&]() {
            for (;;) {
                const u64 i = next.fetch_add(1);
                if (i >= total)
                    return;
                auto record = std::make_unique<SweepRecord>();
                record->planIndex = static_cast<u32>(i);
                record->spec = specs[i];
                record->result = runOne(specs[i]);
                specs_done.fetch_add(1, std::memory_order_relaxed);

                // Publish, then flush the contiguous finished prefix
                // in plan order so sinks see a deterministic stream.
                std::lock_guard<std::mutex> lock(emitMutex);
                done[i] = std::move(record);
                while (emitted < total && done[emitted]) {
                    for (auto *sink : allSinks)
                        sink->add(*done[emitted]);
                    ++emitted;
                }
            }
        };

        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (u32 w = 0; w < workers; ++w)
            pool.emplace_back(workerLoop);
        for (auto &t : pool)
            t.join();
        SONIC_ASSERT(emitted == total, "sweep lost records");
    }

    for (auto *sink : allSinks)
        sink->end();
    return memory.take();
}

} // namespace sonic::app
