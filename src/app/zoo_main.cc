/**
 * @file
 * sonic_zoo — model-zoo serialization and smoke-check CLI.
 *
 *     sonic_zoo --list
 *     sonic_zoo --export=DIR          # every registered model -> JSON
 *     sonic_zoo --smoke=DIR           # export, reload, verify, sweep
 *     sonic_zoo --load=m.json --smoke=DIR
 *
 * The smoke mode is CI's zoo gate: it serializes every registered
 * model, reloads each file, and proves the reloaded network is
 * indistinguishable from the in-memory original — byte-identical
 * re-serialization, then, per kernel, a continuous-power run through
 * the verification oracle's observation harness comparing logits,
 * cycles, op instances and the final FRAM digest bit for bit.
 */

#include <cctype>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dnn/device_net.hh"
#include "dnn/model_io.hh"
#include "dnn/zoo.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "verify/oracle.hh"

namespace
{

using namespace sonic;
using cli::consumeFlag;
using cli::splitCsv;

struct Args
{
    bool list = false;
    std::string exportDir;
    std::string smokeDir;
    std::vector<std::string> loadModels;
    std::vector<std::string> impls; ///< empty = acceptance four
};

/** The acceptance kernels for the round-trip property. */
const char *kDefaultImpls[] = {"Base", "Tile-8", "SONIC", "TAILS"};

int
usage()
{
    std::cerr << "usage: sonic_zoo [--list] [--export=DIR]\n"
                 "                 [--smoke=DIR] [--impls=A,B,...]\n"
                 "                 [--load=model.json[,...]]\n";
    return 2;
}

/**
 * File name for a model (names may hold path-hostile characters).
 * Distinct names that sanitize identically (e.g. "a.b" and "a b")
 * get an FNV-1a suffix of the original name so no export is silently
 * overwritten.
 */
std::string
fileNameFor(const std::string &model)
{
    std::string out;
    bool replaced = false;
    for (char c : model) {
        const bool keep =
            std::isalnum(static_cast<unsigned char>(c)) != 0
            || c == '-' || c == '_';
        out.push_back(keep ? c : '_');
        replaced |= !keep;
    }
    if (replaced) {
        u64 h = 0xcbf29ce484222325ull;
        for (char c : model) {
            h ^= static_cast<u64>(static_cast<unsigned char>(c));
            h *= 0x100000001b3ull;
        }
        char suffix[12];
        std::snprintf(suffix, sizeof suffix, "-%08x",
                      static_cast<unsigned>(h & 0xffffffffu));
        out += suffix;
    }
    return out + ".json";
}

/** Continuous-power observation of a network through the oracle
 * harness (logits, cycles, op instances, final FRAM digest). */
verify::Observation
observe(const dnn::NetworkSpec &net, const std::vector<i16> &input,
        kernels::Impl impl)
{
    verify::LocalWorkload workload;
    workload.net = net;
    workload.input = input;
    workload.impl = impl;
    return verify::runSchedule(workload, verify::Schedule{}, true);
}

bool
sameObservation(const verify::Observation &a,
                const verify::Observation &b, std::string *why)
{
    if (a.completed != b.completed) {
        *why = "completion";
        return false;
    }
    if (a.logits != b.logits) {
        *why = "logits";
        return false;
    }
    if (a.cycles != b.cycles) {
        *why = "cycles";
        return false;
    }
    if (a.opInstances != b.opInstances) {
        *why = "op instances";
        return false;
    }
    if (a.finalNvmDigest != b.finalNvmDigest) {
        *why = "final FRAM digest";
        return false;
    }
    return true;
}

int
exportAll(const std::string &dir)
{
    auto &zoo = dnn::ModelZoo::instance();
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    for (const auto &name : zoo.names()) {
        const auto &entry = zoo.get(name);
        const std::string path = dir + "/" + fileNameFor(name);
        std::string error;
        if (!dnn::saveModelFile(entry.compressed(), path, &error)) {
            std::cerr << "export of '" << name << "' failed: " << error
                      << "\n";
            return 1;
        }
        std::cout << "wrote " << path << " ("
                  << entry.compressed().paramCount() << " params)\n";
    }
    return 0;
}

int
smoke(const std::string &dir, const std::vector<std::string> &impl_names)
{
    if (const int rc = exportAll(dir); rc != 0)
        return rc;

    auto &zoo = dnn::ModelZoo::instance();
    u64 checks = 0;
    for (const auto &name : zoo.names()) {
        const auto &entry = zoo.get(name);
        const std::string path = dir + "/" + fileNameFor(name);
        std::string error;
        auto loaded = dnn::loadModelFile(path, &error);
        if (!loaded) {
            std::cerr << "reload of '" << name << "' failed: " << error
                      << "\n";
            return 1;
        }

        // Byte-exact re-serialization: the format loses nothing.
        if (dnn::modelJson(*loaded)
            != dnn::modelJson(entry.compressed())) {
            std::cerr << "re-serialization of '" << name
                      << "' is not byte-identical\n";
            return 1;
        }

        const auto input = dnn::DeviceNetwork::quantizeInput(
            entry.dataset()[0].input);
        for (const auto &impl_name : impl_names) {
            const auto *info =
                kernels::ImplRegistry::instance().find(impl_name);
            if (info == nullptr)
                fatal("unknown implementation '", impl_name, "'");
            const auto original =
                observe(entry.compressed(), input, info->id);
            const auto reloaded = observe(*loaded, input, info->id);
            std::string why;
            if (!sameObservation(original, reloaded, &why)) {
                std::cerr << "DIVERGENT: '" << name << "' on "
                          << impl_name << " after reload (" << why
                          << ")\n";
                return 1;
            }
            if (!original.completed) {
                std::cerr << "'" << name << "' on " << impl_name
                          << " did not complete on continuous power\n";
                return 1;
            }
            ++checks;
        }
        std::cout << name << ": reload bit-identical across "
                  << impl_names.size() << " kernels\n";
    }
    std::cout << "zoo smoke ok: " << zoo.names().size() << " models x "
              << impl_names.size() << " kernels, " << checks
              << " round-trip checks\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    std::string value;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list") {
            args.list = true;
        } else if (consumeFlag(arg, "--export", &value)) {
            args.exportDir = value;
        } else if (consumeFlag(arg, "--smoke", &value)) {
            args.smokeDir = value;
        } else if (consumeFlag(arg, "--load", &value)) {
            args.loadModels = splitCsv(value);
        } else if (consumeFlag(arg, "--impls", &value)) {
            args.impls = splitCsv(value);
        } else {
            return usage();
        }
    }

    auto &zoo = dnn::ModelZoo::instance();
    for (const auto &path : args.loadModels) {
        std::string error;
        if (!dnn::loadModelIntoZoo(path, zoo, &error)) {
            std::cerr << "cannot load model " << path << ": " << error
                      << "\n";
            return 2;
        }
    }

    if (args.list) {
        for (const auto &name : zoo.names()) {
            const auto &entry = zoo.get(name);
            std::cout << name << " [" << entry.meta().family << "] "
                      << entry.compressed().paramCount() << " params, "
                      << entry.teacher().numClasses << " classes — "
                      << entry.meta().description << "\n";
        }
        return 0;
    }

    if (!args.smokeDir.empty()) {
        std::vector<std::string> impls = args.impls;
        if (impls.empty())
            impls.assign(std::begin(kDefaultImpls),
                         std::end(kDefaultImpls));
        return smoke(args.smokeDir, impls);
    }

    if (!args.exportDir.empty())
        return exportAll(args.exportDir);

    return usage();
}
