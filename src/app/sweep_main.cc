/**
 * @file
 * sonic_sweep — run a declarative experiment grid and stream the
 * records to CSV / JSON / .sonicz sinks.
 *
 *     sonic_sweep --nets=MNIST --impls=SONIC,TAILS --samples=3 \
 *                 --csv=sweep.csv
 *     sonic_sweep --envs=solar@1mF,rf-paper --sonicz=sweep.sonicz
 *     sonic_sweep --power=Continuous,50mF --json=sweep.json
 *     sonic_sweep --from-plan=plan.json --csv=planned.csv
 *
 * The axes mirror app::SweepPlan: nets x impls x (power | envs) x
 * profiles x samples, expanded in the documented order. Any
 * combination of output sinks may be given; each receives the same
 * records in plan order, so sonic_cat over the .sonicz output is
 * byte-identical to the CSV/JSON written directly.
 *
 * --from-plan seeds the grid from a sonic_plan artifact: the axes
 * become the distinct models, kernels, and environments the plan's
 * choices actually use (see plan::Plan::toSweepPlan), so per-run
 * telemetry for a planned deployment is one flag away. Later axis
 * flags still override.
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "app/engine.hh"
#include "plan/plan.hh"
#include "telemetry/sonicz.hh"
#include "util/cli.hh"
#include "util/logging.hh"

namespace
{

using namespace sonic;
using cli::consumeFlag;
using cli::splitCsv;

int
usage()
{
    std::cerr
        << "usage: sonic_sweep [--nets=A,B,...] [--impls=SONIC,...]\n"
           "                   [--power=Continuous,50mF,...]\n"
           "                   [--envs=solar@1mF,rf-paper,...]\n"
           "                   [--profiles=standard,no-lea,...]\n"
           "                   [--samples=N] [--seed=S]\n"
           "                   [--threads=T] [--digests]\n"
           "                   [--progress]\n"
           "                   [--from-plan=PLAN.json]\n"
           "                   [--csv=PATH] [--json=PATH]\n"
           "                   [--sonicz=PATH]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    app::SweepPlan plan;
    app::EngineOptions engine_options;
    std::string csv_path, json_path, sonicz_path, value;

    // --from-plan resolves first so explicit axis flags override the
    // plan's axes, whatever the flag order was.
    std::vector<std::string> args(argv + 1, argv + argc);
    try {
        for (const auto &arg : args) {
            if (!consumeFlag(arg, "--from-plan", &value))
                continue;
            std::ifstream in(value);
            if (!in) {
                std::cerr << "cannot read " << value << "\n";
                return 2;
            }
            std::ostringstream text;
            text << in.rdbuf();
            plan::Plan deployment;
            std::string error;
            if (!plan::Plan::fromJson(text.str(), &deployment,
                                      &error)) {
                std::cerr << "bad plan " << value << ": " << error
                          << "\n";
                return 2;
            }
            plan = deployment.toSweepPlan();
        }

        for (const auto &arg : args) {
            if (consumeFlag(arg, "--from-plan", &value)) {
                continue; // handled above
            } else if (consumeFlag(arg, "--nets", &value)) {
                std::vector<dnn::NetRef> nets;
                for (const auto &name : splitCsv(value))
                    nets.push_back(name);
                plan.nets(std::move(nets));
            } else if (consumeFlag(arg, "--impls", &value)) {
                plan.implNames(splitCsv(value));
            } else if (consumeFlag(arg, "--power", &value)) {
                std::vector<app::PowerKind> kinds;
                for (const auto &name : splitCsv(value)) {
                    app::PowerKind kind;
                    if (!app::powerFromName(name, &kind))
                        fatal("unknown power kind '", name,
                              "' (Continuous | 50mF | 1mF | 100uF)");
                    kinds.push_back(kind);
                }
                plan.power(std::move(kinds));
            } else if (consumeFlag(arg, "--envs", &value)) {
                plan.environmentLabels(splitCsv(value));
            } else if (consumeFlag(arg, "--profiles", &value)) {
                std::vector<app::ProfileVariant> variants;
                for (const auto &name : splitCsv(value)) {
                    app::ProfileVariant variant;
                    if (!app::profileFromName(name, &variant))
                        fatal("unknown profile '", name,
                              "' (standard | no-lea | no-dma)");
                    variants.push_back(variant);
                }
                plan.profiles(std::move(variants));
            } else if (consumeFlag(arg, "--samples", &value)) {
                plan.samples(static_cast<u32>(std::stoul(value)));
            } else if (consumeFlag(arg, "--seed", &value)) {
                plan.baseSeed(std::stoull(value));
            } else if (consumeFlag(arg, "--threads", &value)) {
                engine_options.threads =
                    static_cast<u32>(std::stoul(value));
            } else if (arg == "--progress") {
                engine_options.progress = true;
            } else if (arg == "--digests") {
                plan.captureNvmDigests(true);
            } else if (consumeFlag(arg, "--csv", &value)) {
                csv_path = value;
            } else if (consumeFlag(arg, "--json", &value)) {
                json_path = value;
            } else if (consumeFlag(arg, "--sonicz", &value)) {
                sonicz_path = value;
            } else {
                return usage();
            }
        }
    } catch (const std::exception &) { // bad numeric flag value
        return usage();
    }

    std::vector<app::ResultSink *> sinks;
    std::ofstream csv_file, json_file, sonicz_file;
    app::CsvSink csv_sink(csv_file);
    app::JsonSink json_sink(json_file);
    std::unique_ptr<telemetry::SoniczSweepSink> sonicz_sink;
    if (!csv_path.empty()) {
        csv_file.open(csv_path);
        if (!csv_file) {
            std::cerr << "cannot write " << csv_path << "\n";
            return 2;
        }
        sinks.push_back(&csv_sink);
    }
    if (!json_path.empty()) {
        json_file.open(json_path);
        if (!json_file) {
            std::cerr << "cannot write " << json_path << "\n";
            return 2;
        }
        sinks.push_back(&json_sink);
    }
    if (!sonicz_path.empty()) {
        sonicz_file.open(sonicz_path, std::ios::binary);
        if (!sonicz_file) {
            std::cerr << "cannot write " << sonicz_path << "\n";
            return 2;
        }
        // Parallel block encoding: byte-identical to serial, so the
        // sweep worker count is a safe default.
        sonicz_sink = std::make_unique<telemetry::SoniczSweepSink>(
            sonicz_file, engine_options.threads);
        sinks.push_back(sonicz_sink.get());
    }

    app::Engine engine(engine_options);
    const auto records = engine.run(plan, sinks);

    u64 completed = 0;
    for (const auto &record : records)
        if (record.result.completed)
            ++completed;
    std::cout << "sweep: " << records.size() << " runs, " << completed
              << " completed (" << engine.threadCount()
              << " threads)\n";
    return records.empty() ? 1 : 0;
}
