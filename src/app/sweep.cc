#include "app/sweep.hh"

#include <cstring>

#include "util/logging.hh"
#include "util/rng.hh"

namespace sonic::app
{

namespace
{

/** FNV-1a over the model name: the net coordinate for seeding. */
u64
nameHash(const std::string &name)
{
    return fnv1a(name);
}

} // namespace

SweepPlan &
SweepPlan::nets(std::vector<dnn::NetRef> values)
{
    SONIC_ASSERT(!values.empty(), "empty net axis");
    // Validate at plan-build, not mid-sweep: a typo should fail before
    // any worker thread spins up, with the remedy in the message.
    auto &zoo = dnn::ModelZoo::instance();
    for (const auto &name : values) {
        if (!zoo.contains(name))
            fatal("unknown model '", name,
                  "' in the sweep net axis; registered models: ",
                  zoo.availableList());
    }
    nets_ = std::move(values);
    return *this;
}

SweepPlan &
SweepPlan::allNets()
{
    return nets({std::begin(dnn::kPaperNets), std::end(dnn::kPaperNets)});
}

SweepPlan &
SweepPlan::impls(std::vector<kernels::Impl> values)
{
    SONIC_ASSERT(!values.empty(), "empty impl axis");
    impls_ = std::move(values);
    return *this;
}

SweepPlan &
SweepPlan::implNames(const std::vector<std::string> &names)
{
    std::vector<kernels::Impl> ids;
    ids.reserve(names.size());
    for (const auto &name : names) {
        const auto *info = kernels::ImplRegistry::instance().find(name);
        if (info == nullptr)
            fatal("unknown implementation '", name, "'");
        ids.push_back(info->id);
    }
    return impls(std::move(ids));
}

SweepPlan &
SweepPlan::allImpls()
{
    return impls({std::begin(kernels::kAllImpls),
                  std::end(kernels::kAllImpls)});
}

SweepPlan &
SweepPlan::power(std::vector<PowerKind> values)
{
    SONIC_ASSERT(!values.empty(), "empty power axis");
    power_ = std::move(values);
    return *this;
}

SweepPlan &
SweepPlan::allPower()
{
    return power({std::begin(kAllPower), std::end(kAllPower)});
}

SweepPlan &
SweepPlan::environments(std::vector<env::EnvRef> values)
{
    SONIC_ASSERT(!values.empty(), "empty environment axis");
    // Validate at plan-build: a typo should fail before any worker
    // spins up, naming the registered environments.
    auto &registry = env::EnvRegistry::instance();
    for (const auto &ref : values) {
        if (!ref.empty() && !registry.contains(ref.env))
            fatal("unknown environment '", ref.env,
                  "' in the sweep environment axis; registered "
                  "environments: ",
                  registry.availableList());
    }
    environments_ = std::move(values);
    return *this;
}

SweepPlan &
SweepPlan::environmentLabels(const std::vector<std::string> &labels)
{
    std::vector<env::EnvRef> refs;
    refs.reserve(labels.size());
    for (const auto &label : labels) {
        env::EnvRef ref;
        std::string error;
        if (!env::parseEnvRef(label, &ref, &error))
            fatal(error);
        refs.push_back(std::move(ref));
    }
    return environments(std::move(refs));
}

SweepPlan &
SweepPlan::profiles(std::vector<ProfileVariant> values)
{
    SONIC_ASSERT(!values.empty(), "empty profile axis");
    profiles_ = std::move(values);
    return *this;
}

SweepPlan &
SweepPlan::samples(u32 n)
{
    SONIC_ASSERT(n > 0, "samples(n) needs n > 0");
    std::vector<u32> indices(n);
    for (u32 i = 0; i < n; ++i)
        indices[i] = i;
    return sampleIndices(std::move(indices));
}

SweepPlan &
SweepPlan::sampleIndices(std::vector<u32> values)
{
    SONIC_ASSERT(!values.empty(), "empty sample axis");
    samples_ = std::move(values);
    return *this;
}

SweepPlan &
SweepPlan::failureSchedules(std::vector<std::vector<u64>> values)
{
    SONIC_ASSERT(!values.empty(), "empty schedule axis");
    schedules_ = std::move(values);
    return *this;
}

SweepPlan &
SweepPlan::captureNvmDigests(bool enabled)
{
    captureNvmDigests_ = enabled;
    return *this;
}

SweepPlan &
SweepPlan::baseSeed(u64 seed)
{
    baseSeed_ = seed;
    return *this;
}

u64
SweepPlan::size() const
{
    return static_cast<u64>(nets_.size()) * impls_.size()
         * power_.size() * environments_.size() * profiles_.size()
         * samples_.size() * schedules_.size();
}

u64
SweepPlan::specSeed(u64 baseSeed, const RunSpec &spec)
{
    // Coordinate-hash, not index-hash: adding points to one axis does
    // not reseed the specs shared with a smaller plan. The model
    // coordinate is a hash of its registered name, so a model keeps
    // its seeds no matter what else is in the zoo.
    u64 coord = static_cast<u64>(spec.impl) << 48
              | static_cast<u64>(spec.power) << 40
              | static_cast<u64>(spec.profile) << 32
              | static_cast<u64>(spec.sampleIndex);
    u64 h = mix64(baseSeed) ^ mix64(nameHash(spec.net)) ^ coord;
    // An environment is a coordinate too: fold its name and capacitor
    // override so distinct environments reseed — which is what makes
    // per-device deployment phases diverge — while the empty EnvRef
    // keeps the seed values plans produced before the axis existed.
    if (!spec.environment.empty()) {
        h = mix64(h ^ nameHash(spec.environment.env));
        u64 cap_bits = 0;
        static_assert(sizeof cap_bits
                      == sizeof spec.environment.capacitanceFarads);
        std::memcpy(&cap_bits, &spec.environment.capacitanceFarads,
                    sizeof cap_bits);
        h = mix64(h ^ cap_bits);
    }
    // A failure schedule is a coordinate too: fold its contents so
    // distinct schedules reseed (empty schedules keep the seed values
    // plans produced before the axis existed).
    for (u64 index : spec.failureSchedule)
        h = mix64(h ^ index);
    return mix64(h);
}

std::vector<RunSpec>
SweepPlan::expand() const
{
    std::vector<RunSpec> specs;
    specs.reserve(size());
    for (const auto &net : nets_) {
        for (auto impl : impls_) {
            for (auto power : power_) {
                for (const auto &environment : environments_) {
                    for (auto profile : profiles_) {
                        for (auto sample : samples_) {
                            for (const auto &schedule : schedules_) {
                                RunSpec spec;
                                spec.net = net;
                                spec.impl = impl;
                                spec.power = power;
                                spec.environment = environment;
                                spec.profile = profile;
                                spec.sampleIndex = sample;
                                spec.failureSchedule = schedule;
                                spec.captureNvmDigests =
                                    captureNvmDigests_;
                                spec.seed = specSeed(baseSeed_, spec);
                                specs.push_back(spec);
                            }
                        }
                    }
                }
            }
        }
    }
    return specs;
}

} // namespace sonic::app
