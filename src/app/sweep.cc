#include "app/sweep.hh"

#include "util/logging.hh"

namespace sonic::app
{

namespace
{

/** splitmix64 finalizer — the same mixer Rng seeds with. */
u64
mix64(u64 x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** FNV-1a over the model name: the net coordinate for seeding. */
u64
nameHash(const std::string &name)
{
    u64 h = 0xcbf29ce484222325ull;
    for (char c : name) {
        h ^= static_cast<u64>(static_cast<unsigned char>(c));
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

SweepPlan &
SweepPlan::nets(std::vector<dnn::NetRef> values)
{
    SONIC_ASSERT(!values.empty(), "empty net axis");
    // Validate at plan-build, not mid-sweep: a typo should fail before
    // any worker thread spins up, with the remedy in the message.
    auto &zoo = dnn::ModelZoo::instance();
    for (const auto &name : values) {
        if (!zoo.contains(name))
            fatal("unknown model '", name,
                  "' in the sweep net axis; registered models: ",
                  zoo.availableList());
    }
    nets_ = std::move(values);
    return *this;
}

SweepPlan &
SweepPlan::allNets()
{
    return nets({std::begin(dnn::kPaperNets), std::end(dnn::kPaperNets)});
}

SweepPlan &
SweepPlan::impls(std::vector<kernels::Impl> values)
{
    SONIC_ASSERT(!values.empty(), "empty impl axis");
    impls_ = std::move(values);
    return *this;
}

SweepPlan &
SweepPlan::implNames(const std::vector<std::string> &names)
{
    std::vector<kernels::Impl> ids;
    ids.reserve(names.size());
    for (const auto &name : names) {
        const auto *info = kernels::ImplRegistry::instance().find(name);
        if (info == nullptr)
            fatal("unknown implementation '", name, "'");
        ids.push_back(info->id);
    }
    return impls(std::move(ids));
}

SweepPlan &
SweepPlan::allImpls()
{
    return impls({std::begin(kernels::kAllImpls),
                  std::end(kernels::kAllImpls)});
}

SweepPlan &
SweepPlan::power(std::vector<PowerKind> values)
{
    SONIC_ASSERT(!values.empty(), "empty power axis");
    power_ = std::move(values);
    return *this;
}

SweepPlan &
SweepPlan::allPower()
{
    return power({std::begin(kAllPower), std::end(kAllPower)});
}

SweepPlan &
SweepPlan::profiles(std::vector<ProfileVariant> values)
{
    SONIC_ASSERT(!values.empty(), "empty profile axis");
    profiles_ = std::move(values);
    return *this;
}

SweepPlan &
SweepPlan::samples(u32 n)
{
    SONIC_ASSERT(n > 0, "samples(n) needs n > 0");
    std::vector<u32> indices(n);
    for (u32 i = 0; i < n; ++i)
        indices[i] = i;
    return sampleIndices(std::move(indices));
}

SweepPlan &
SweepPlan::sampleIndices(std::vector<u32> values)
{
    SONIC_ASSERT(!values.empty(), "empty sample axis");
    samples_ = std::move(values);
    return *this;
}

SweepPlan &
SweepPlan::failureSchedules(std::vector<std::vector<u64>> values)
{
    SONIC_ASSERT(!values.empty(), "empty schedule axis");
    schedules_ = std::move(values);
    return *this;
}

SweepPlan &
SweepPlan::captureNvmDigests(bool enabled)
{
    captureNvmDigests_ = enabled;
    return *this;
}

SweepPlan &
SweepPlan::baseSeed(u64 seed)
{
    baseSeed_ = seed;
    return *this;
}

u64
SweepPlan::size() const
{
    return static_cast<u64>(nets_.size()) * impls_.size()
         * power_.size() * profiles_.size() * samples_.size()
         * schedules_.size();
}

u64
SweepPlan::specSeed(u64 baseSeed, const RunSpec &spec)
{
    // Coordinate-hash, not index-hash: adding points to one axis does
    // not reseed the specs shared with a smaller plan. The model
    // coordinate is a hash of its registered name, so a model keeps
    // its seeds no matter what else is in the zoo.
    u64 coord = static_cast<u64>(spec.impl) << 48
              | static_cast<u64>(spec.power) << 40
              | static_cast<u64>(spec.profile) << 32
              | static_cast<u64>(spec.sampleIndex);
    u64 h = mix64(baseSeed) ^ mix64(nameHash(spec.net)) ^ coord;
    // A failure schedule is a coordinate too: fold its contents so
    // distinct schedules reseed (empty schedules keep the seed values
    // plans produced before the axis existed).
    for (u64 index : spec.failureSchedule)
        h = mix64(h ^ index);
    return mix64(h);
}

std::vector<RunSpec>
SweepPlan::expand() const
{
    std::vector<RunSpec> specs;
    specs.reserve(size());
    for (const auto &net : nets_) {
        for (auto impl : impls_) {
            for (auto power : power_) {
                for (auto profile : profiles_) {
                    for (auto sample : samples_) {
                        for (const auto &schedule : schedules_) {
                            RunSpec spec;
                            spec.net = net;
                            spec.impl = impl;
                            spec.power = power;
                            spec.profile = profile;
                            spec.sampleIndex = sample;
                            spec.failureSchedule = schedule;
                            spec.captureNvmDigests =
                                captureNvmDigests_;
                            spec.seed = specSeed(baseSeed_, spec);
                            specs.push_back(spec);
                        }
                    }
                }
            }
        }
    }
    return specs;
}

} // namespace sonic::app
