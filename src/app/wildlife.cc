#include "app/wildlife.hh"

#include "pipeline/pipeline.hh"

namespace sonic::app
{

namespace
{

/** Energy of one TX attempt carrying `bytes` of payload. */
f64
attemptJ(const arch::EnergyProfile &radio, f64 bytes)
{
    pipeline::RadioConfig cfg;
    cfg.enabled = true;
    cfg.payloadBytes = static_cast<u32>(bytes);
    return pipeline::attemptEnergyJ(cfg, radio);
}

} // namespace

WildlifeParams
WildlifeParams::fromRadio(const arch::EnergyProfile &radio)
{
    WildlifeParams params;
    params.commJ = attemptJ(radio, kWildlifeImageBytes);
    params.resultCommShrink =
        params.commJ / attemptJ(radio, kWildlifeResultBytes);
    return params;
}

std::vector<WildlifePoint>
sweepWildlife(const WildlifeParams &params, u32 points,
              bool send_result_only)
{
    using genesis::AppModel;
    std::vector<WildlifePoint> rows;
    rows.reserve(points);

    const f64 comm_filtered = send_result_only
        ? params.commJ / params.resultCommShrink
        : params.commJ;

    for (u32 i = 0; i < points; ++i) {
        WildlifePoint row;
        row.accuracy = points > 1
            ? static_cast<f64>(i) / static_cast<f64>(points - 1)
            : 1.0;

        AppModel base;
        base.baseRate = params.baseRate;
        base.senseJ = params.senseJ;
        base.commJ = params.commJ; // always sends the full image
        row.alwaysSend = genesis::impjBaseline(base);

        AppModel ideal = base;
        ideal.commJ = comm_filtered;
        row.ideal = genesis::impjIdeal(ideal);

        AppModel naive = ideal;
        naive.truePositive = row.accuracy;
        naive.trueNegative = row.accuracy;
        naive.inferJ = params.naiveInferJ;
        row.naive = genesis::impjInference(naive);

        AppModel st = naive;
        st.inferJ = params.tailsInferJ;
        row.sonicTails = genesis::impjInference(st);

        rows.push_back(row);
    }
    return rows;
}

OffloadComparison
offloadVsLocal(f64 image_bytes, f64 local_infer_j, f64 harvest_watts)
{
    // One eight-byte OpenChirp packet = one radio TX attempt under
    // the measured profile (Sec. 3.1 quotes ~0.3 J; the profile's
    // wake + payload + ACK-listen comes to ~0.24 J).
    const auto radio = arch::EnergyProfile::openChirpRadio();
    const f64 packet_j = attemptJ(radio, kWildlifeResultBytes);
    const f64 packets = image_bytes / kWildlifeResultBytes;
    OffloadComparison cmp;
    cmp.offloadSeconds = packets * packet_j / harvest_watts;
    cmp.localSeconds = local_infer_j / harvest_watts;
    cmp.speedup = cmp.offloadSeconds / cmp.localSeconds;
    return cmp;
}

} // namespace sonic::app
