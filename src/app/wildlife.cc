#include "app/wildlife.hh"

namespace sonic::app
{

std::vector<WildlifePoint>
sweepWildlife(const WildlifeParams &params, u32 points,
              bool send_result_only)
{
    using genesis::AppModel;
    std::vector<WildlifePoint> rows;
    rows.reserve(points);

    const f64 comm_filtered = send_result_only
        ? params.commJ / params.resultCommShrink
        : params.commJ;

    for (u32 i = 0; i < points; ++i) {
        WildlifePoint row;
        row.accuracy = points > 1
            ? static_cast<f64>(i) / static_cast<f64>(points - 1)
            : 1.0;

        AppModel base;
        base.baseRate = params.baseRate;
        base.senseJ = params.senseJ;
        base.commJ = params.commJ; // always sends the full image
        row.alwaysSend = genesis::impjBaseline(base);

        AppModel ideal = base;
        ideal.commJ = comm_filtered;
        row.ideal = genesis::impjIdeal(ideal);

        AppModel naive = ideal;
        naive.truePositive = row.accuracy;
        naive.trueNegative = row.accuracy;
        naive.inferJ = params.naiveInferJ;
        row.naive = genesis::impjInference(naive);

        AppModel st = naive;
        st.inferJ = params.tailsInferJ;
        row.sonicTails = genesis::impjInference(st);

        rows.push_back(row);
    }
    return rows;
}

OffloadComparison
offloadVsLocal(f64 image_bytes, f64 local_infer_j, f64 harvest_watts)
{
    // OpenChirp: an eight-byte packet draws 120 mA for ~800 ms at
    // ~3.3 V (Sec. 3.1) => ~0.317 J per packet.
    const f64 packet_j = 0.120 * 0.800 * 3.3;
    const f64 packets = image_bytes / 8.0;
    OffloadComparison cmp;
    cmp.offloadSeconds = packets * packet_j / harvest_watts;
    cmp.localSeconds = local_infer_j / harvest_watts;
    cmp.speedup = cmp.offloadSeconds / cmp.localSeconds;
    return cmp;
}

} // namespace sonic::app
