/**
 * @file
 * The experiment vocabulary shared by the sweep engine, the benchmark
 * binaries, the test suite, and the examples: what one run is (RunSpec)
 * and what it measures (ExperimentResult — the live/dead/energy
 * breakdowns the paper's figures need).
 *
 * Execution lives in the Engine (app/engine.hh): single runs via
 * Engine::runOne, grids via SweepPlan + Engine::run.
 */

#ifndef SONIC_APP_EXPERIMENT_HH
#define SONIC_APP_EXPERIMENT_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/device.hh"
#include "dnn/dataset.hh"
#include "dnn/zoo.hh"
#include "env/environment.hh"
#include "kernels/runner.hh"
#include "util/types.hh"

namespace sonic::app
{

/** The four power systems of Fig. 9c. */
enum class PowerKind : u8
{
    Continuous,
    Cap50mF,
    Cap1mF,
    Cap100uF
};

inline constexpr PowerKind kAllPower[] = {
    PowerKind::Continuous, PowerKind::Cap50mF, PowerKind::Cap1mF,
    PowerKind::Cap100uF};

const char *powerName(PowerKind kind);

/** Inverse of powerName (telemetry decode); false if unknown. */
bool powerFromName(const std::string &name, PowerKind *out);

/** Harvester income of the RF setup (Powercast at 1 m, Sec. 8). */
constexpr f64 kHarvestWatts = 0.5e-3;

/** Energy-profile ablations (Sec. 9.1's LEA/DMA software emulation). */
enum class ProfileVariant : u8
{
    Standard,
    NoLea,
    NoDma
};

inline constexpr ProfileVariant kAllProfiles[] = {
    ProfileVariant::Standard, ProfileVariant::NoLea,
    ProfileVariant::NoDma};

const char *profileName(ProfileVariant variant);

/** Inverse of profileName (telemetry decode); false if unknown. */
bool profileFromName(const std::string &name, ProfileVariant *out);

/** One experiment specification. */
struct RunSpec
{
    /** Registered model name, resolved through dnn::ModelZoo. */
    dnn::NetRef net = "MNIST";
    kernels::Impl impl = kernels::Impl::Sonic;
    PowerKind power = PowerKind::Continuous;
    ProfileVariant profile = ProfileVariant::Standard;
    u32 sampleIndex = 0;
    /**
     * Per-run seed, assigned deterministically by SweepPlan::expand
     * and recorded by every sink. Reserved for stochastic run-time
     * models (e.g. harvester jitter); the current workloads and power
     * models are fully deterministic and do not consume it.
     */
    u64 seed = 0x5eed;

    /**
     * Harvested-energy environment (the env::EnvRegistry axis). When
     * non-empty the run is powered by the named environment — seeded
     * with this spec's `seed`, honoring the capacitor override — and
     * the legacy `power` axis value is ignored; when empty (the
     * default) `power` selects the supply as before the axis existed.
     */
    env::EnvRef environment;

    /**
     * Explicit failure-index trace (the oracle's coordinate). When
     * non-empty the run is powered by arch::SchedulePower over these
     * draw indices and the `power`/`environment` axis values are
     * ignored; when empty (the default) they select the supply as
     * always.
     */
    std::vector<u64> failureSchedule;

    /**
     * Snapshot the FRAM digest at every reboot boundary and at run
     * end (ExperimentResult::rebootDigests / finalNvmDigest). Off by
     * default: a capacitor run can reboot hundreds of thousands of
     * times and a digest walks the whole non-volatile region.
     */
    bool captureNvmDigests = false;
};

/** Per-layer timing/energy breakdown row. */
struct LayerBreakdown
{
    std::string name;
    f64 kernelSeconds = 0.0;
    f64 controlSeconds = 0.0;
    f64 energyJ = 0.0;
};

/** Everything a figure needs from one run. */
struct ExperimentResult
{
    bool completed = false;
    bool nonTerminating = false;
    u64 reboots = 0;
    u64 tasksExecuted = 0;

    f64 liveSeconds = 0.0;
    f64 deadSeconds = 0.0;
    f64 totalSeconds = 0.0;
    f64 energyJ = 0.0;    ///< total consumed (includes re-execution)
    f64 harvestedJ = 0.0;

    std::vector<LayerBreakdown> layers;
    std::map<std::string, f64> energyByOp; ///< op name -> Joules

    std::vector<i16> logits;
    u32 predictedClass = 0;
    u32 tailsTileWords = 0; ///< TAILS' calibrated LEA tile (0 if n/a)

    /** @name Oracle observables (RunSpec::failureSchedule runs) */
    /// @{
    u64 scheduleFired = 0; ///< scheduled failure indices that fired
    u64 opInstances = 0;   ///< total charged op instances (all kinds)
    u64 finalNvmDigest = 0; ///< FRAM digest at run end (capture only)
    std::vector<u64> rebootDigests; ///< FRAM digest per reboot (capture)
    /// @}
};

/** Build the power supply for a kind (exposed for tests). */
std::unique_ptr<arch::PowerSupply> makePower(PowerKind kind);

/**
 * Build the supply a spec runs under, applying the documented
 * precedence: failureSchedule > environment > power kind.
 */
std::unique_ptr<arch::PowerSupply> makeSupply(const RunSpec &spec);

/** Build the energy profile for an ablation variant. */
arch::EnergyProfile makeProfile(ProfileVariant variant);

} // namespace sonic::app

#endif // SONIC_APP_EXPERIMENT_HH
