/**
 * @file
 * The experiment harness shared by the benchmark binaries, the test
 * suite, and the examples: run one inference of a workload under a
 * chosen implementation and power system, and report the measurements
 * the paper's figures need (live time per layer split kernel/control,
 * dead time, energy per op class, reboots, completion).
 */

#ifndef SONIC_APP_EXPERIMENT_HH
#define SONIC_APP_EXPERIMENT_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/device.hh"
#include "dnn/dataset.hh"
#include "dnn/networks.hh"
#include "kernels/runner.hh"
#include "util/types.hh"

namespace sonic::app
{

/** The four power systems of Fig. 9c. */
enum class PowerKind : u8
{
    Continuous,
    Cap50mF,
    Cap1mF,
    Cap100uF
};

inline constexpr PowerKind kAllPower[] = {
    PowerKind::Continuous, PowerKind::Cap50mF, PowerKind::Cap1mF,
    PowerKind::Cap100uF};

const char *powerName(PowerKind kind);

/** Harvester income of the RF setup (Powercast at 1 m, Sec. 8). */
constexpr f64 kHarvestWatts = 0.5e-3;

/** Energy-profile ablations (Sec. 9.1's LEA/DMA software emulation). */
enum class ProfileVariant : u8
{
    Standard,
    NoLea,
    NoDma
};

/** One experiment specification. */
struct RunSpec
{
    dnn::NetId net = dnn::NetId::Mnist;
    kernels::Impl impl = kernels::Impl::Sonic;
    PowerKind power = PowerKind::Continuous;
    ProfileVariant profile = ProfileVariant::Standard;
    u32 sampleIndex = 0;
    u64 seed = 0x5eed;
};

/** Per-layer timing/energy breakdown row. */
struct LayerBreakdown
{
    std::string name;
    f64 kernelSeconds = 0.0;
    f64 controlSeconds = 0.0;
    f64 energyJ = 0.0;
};

/** Everything a figure needs from one run. */
struct ExperimentResult
{
    bool completed = false;
    bool nonTerminating = false;
    u64 reboots = 0;
    u64 tasksExecuted = 0;

    f64 liveSeconds = 0.0;
    f64 deadSeconds = 0.0;
    f64 totalSeconds = 0.0;
    f64 energyJ = 0.0;    ///< total consumed (includes re-execution)
    f64 harvestedJ = 0.0;

    std::vector<LayerBreakdown> layers;
    std::map<std::string, f64> energyByOp; ///< op name -> Joules

    std::vector<i16> logits;
    u32 predictedClass = 0;
};

/** Build the power supply for a kind (exposed for tests). */
std::unique_ptr<arch::PowerSupply> makePower(PowerKind kind);

/** Run one inference experiment. */
ExperimentResult runExperiment(const RunSpec &spec);

/** @name Cached workload artifacts (deterministic, built once). */
/// @{
const dnn::NetworkSpec &cachedTeacher(dnn::NetId net);
const dnn::NetworkSpec &cachedCompressed(dnn::NetId net);
const dnn::Dataset &cachedDataset(dnn::NetId net);
/// @}

} // namespace sonic::app

#endif // SONIC_APP_EXPERIMENT_HH
