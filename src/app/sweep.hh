/**
 * @file
 * Declarative experiment grids. A SweepPlan names the axes of a
 * cross-product sweep — workloads, implementations, power systems,
 * energy-profile ablations, input samples — and expands to the
 * ordered RunSpec list the Engine executes:
 *
 *     app::SweepPlan plan;
 *     plan.allNets().allImpls().power({app::PowerKind::Continuous});
 *     app::Engine engine;
 *     const auto records = engine.run(plan);
 *
 * Expansion order is fixed and documented (nets outermost, then
 * impls, power, environments, profiles, samples, failure schedules
 * innermost) so
 * figure code can rely
 * on record ordering, and each expanded spec gets a deterministic
 * seed derived from the plan's base seed and the spec's coordinates —
 * independent of plan shape and of how many worker threads run it.
 * (Seeds are recorded into every spec and streamed by the sinks;
 * today's workloads and power models are fully deterministic, so the
 * seed feeds future stochastic models rather than changing results.)
 */

#ifndef SONIC_APP_SWEEP_HH
#define SONIC_APP_SWEEP_HH

#include <string>
#include <vector>

#include "app/experiment.hh"

namespace sonic::app
{

/** Builder for a cross-product grid of RunSpecs. */
class SweepPlan
{
  public:
    /** @name Axis setters (each replaces the axis; default = the
     * RunSpec default as a single point). */
    /// @{
    /**
     * Workloads by registered model name. Every name is validated
     * against the ModelZoo here, at plan-build time: an unknown name
     * is a fatal configuration error reporting the available models.
     */
    SweepPlan &nets(std::vector<dnn::NetRef> values);
    /** The paper's three workloads (dnn::kPaperNets). */
    SweepPlan &allNets();

    SweepPlan &impls(std::vector<kernels::Impl> values);
    /** Lookup implementations by registry name; unknown names are a
     * fatal configuration error. */
    SweepPlan &implNames(const std::vector<std::string> &names);
    /** The paper's six implementations (kAllImpls). */
    SweepPlan &allImpls();

    SweepPlan &power(std::vector<PowerKind> values);
    SweepPlan &allPower();

    /**
     * Harvested-energy environment axis. Each value names a registered
     * environment (env::EnvRegistry) with an optional capacitor-size
     * override; names are validated here, at plan-build time. The
     * empty EnvRef (the default single point) means "use the
     * power-kind axis", so plans built before this axis existed keep
     * their exact specs and seeds.
     */
    SweepPlan &environments(std::vector<env::EnvRef> values);
    /** Environments by label ("solar", "rf-paper@50mF"); bad labels
     * and unknown names are fatal configuration errors. */
    SweepPlan &environmentLabels(const std::vector<std::string> &labels);

    SweepPlan &profiles(std::vector<ProfileVariant> values);

    /** Sample indices 0..n-1. */
    SweepPlan &samples(u32 n);
    SweepPlan &sampleIndices(std::vector<u32> values);

    /**
     * Failure-schedule axis (innermost). Each value is an explicit
     * draw-index trace executed under arch::SchedulePower; the empty
     * schedule (the default single point) means "use the power-kind
     * axis". The verification oracle fans a batch of adversarial
     * schedules across the worker pool through this axis.
     */
    SweepPlan &failureSchedules(std::vector<std::vector<u64>> values);
    /// @}

    /** Capture per-reboot/final NVM digests on every expanded spec. */
    SweepPlan &captureNvmDigests(bool enabled);

    /**
     * Base seed mixed into every expanded spec's seed (recorded
     * metadata — see the file comment; it does not change today's
     * deterministic results).
     */
    SweepPlan &baseSeed(u64 seed);

    /** Number of specs the plan expands to. */
    u64 size() const;

    /**
     * Expand the cross product in the documented order, assigning
     * each spec its deterministic per-coordinate seed.
     */
    std::vector<RunSpec> expand() const;

    /** @name Axis inspection (used by the engine and tests). */
    /// @{
    const std::vector<dnn::NetRef> &netAxis() const { return nets_; }
    const std::vector<kernels::Impl> &implAxis() const { return impls_; }
    const std::vector<PowerKind> &powerAxis() const { return power_; }
    const std::vector<env::EnvRef> &environmentAxis() const
    {
        return environments_;
    }
    const std::vector<ProfileVariant> &profileAxis() const
    {
        return profiles_;
    }
    const std::vector<u32> &sampleAxis() const { return samples_; }
    const std::vector<std::vector<u64>> &scheduleAxis() const
    {
        return schedules_;
    }
    /// @}

    /**
     * The seed an expanded spec receives: a splitmix64 mix of the
     * base seed and the spec coordinates. Exposed so tests can check
     * shape-independence.
     */
    static u64 specSeed(u64 baseSeed, const RunSpec &spec);

  private:
    std::vector<dnn::NetRef> nets_{"MNIST"};
    std::vector<kernels::Impl> impls_{kernels::Impl::Sonic};
    std::vector<PowerKind> power_{PowerKind::Continuous};
    std::vector<env::EnvRef> environments_{{}};
    std::vector<ProfileVariant> profiles_{ProfileVariant::Standard};
    std::vector<u32> samples_{0};
    std::vector<std::vector<u64>> schedules_{{}};
    bool captureNvmDigests_ = false;
    u64 baseSeed_ = 0x5eed;
};

} // namespace sonic::app

#endif // SONIC_APP_SWEEP_HH
