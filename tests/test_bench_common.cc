/**
 * @file
 * Tests for the bench helpers: GeoMean and layerSeconds edge cases,
 * status formatting, and sweep-record lookup.
 */

#include <gtest/gtest.h>

#include "bench/bench_common.hh"

namespace sonic::bench
{
namespace
{

TEST(GeoMeanTest, EmptyIsZero)
{
    GeoMean g;
    EXPECT_EQ(g.value(), 0.0);
    EXPECT_EQ(g.count(), 0u);
}

TEST(GeoMeanTest, SingleValueIsItself)
{
    GeoMean g;
    g.add(3.5);
    EXPECT_DOUBLE_EQ(g.value(), 3.5);
    EXPECT_EQ(g.count(), 1u);
}

TEST(GeoMeanTest, GeometricNotArithmetic)
{
    GeoMean g;
    g.add(2.0);
    g.add(8.0);
    EXPECT_NEAR(g.value(), 4.0, 1e-12); // not 5.0
}

TEST(GeoMeanTest, IgnoresNonPositiveObservations)
{
    GeoMean g;
    g.add(0.0);
    g.add(-4.0);
    EXPECT_EQ(g.value(), 0.0);
    EXPECT_EQ(g.count(), 0u);
    g.add(7.0);
    EXPECT_DOUBLE_EQ(g.value(), 7.0);
    EXPECT_EQ(g.count(), 1u);
}

app::ExperimentResult
resultWithLayers()
{
    app::ExperimentResult r;
    r.layers.push_back({"conv1", 0.25, 0.05, 1e-3});
    r.layers.push_back({"fc", 0.5, 0.0, 2e-3});
    r.layers.push_back({"zero", 0.0, 0.0, 0.0});
    return r;
}

TEST(LayerSecondsTest, SumsKernelAndControl)
{
    const auto r = resultWithLayers();
    EXPECT_DOUBLE_EQ(layerSeconds(r, "conv1"), 0.3);
    EXPECT_DOUBLE_EQ(layerSeconds(r, "fc"), 0.5);
}

TEST(LayerSecondsTest, MissingLayerIsZero)
{
    const auto r = resultWithLayers();
    EXPECT_EQ(layerSeconds(r, "conv9"), 0.0);
    EXPECT_EQ(layerSeconds(app::ExperimentResult{}, "conv1"), 0.0);
}

TEST(LayerSecondsTest, ZeroTimeLayerIsZeroNotMissing)
{
    const auto r = resultWithLayers();
    EXPECT_EQ(layerSeconds(r, "zero"), 0.0);
}

TEST(StatusOfTest, ThreeStates)
{
    app::ExperimentResult r;
    r.completed = true;
    EXPECT_EQ(statusOf(r), "ok");
    r.completed = false;
    r.nonTerminating = true;
    EXPECT_EQ(statusOf(r), "DNF");
    r.nonTerminating = false;
    EXPECT_EQ(statusOf(r), "fail");
}

TEST(FindRecordTest, MatchesCoordinatesOrNull)
{
    std::vector<app::SweepRecord> records(2);
    records[0].spec.net = "HAR";
    records[0].spec.impl = kernels::Impl::Sonic;
    records[0].result.energyJ = 1.0;
    records[1].spec.net = "HAR";
    records[1].spec.impl = kernels::Impl::Tails;
    records[1].spec.power = app::PowerKind::Cap1mF;
    records[1].result.energyJ = 2.0;

    const auto *hit = findRecord(records, "HAR",
                                 kernels::Impl::Tails,
                                 app::PowerKind::Cap1mF);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->result.energyJ, 2.0);

    EXPECT_EQ(findRecord(records, "OkG",
                         kernels::Impl::Sonic),
              nullptr);
    EXPECT_EQ(findRecord(records, "HAR",
                         kernels::Impl::Tails,
                         app::PowerKind::Cap100uF),
              nullptr);

    EXPECT_EQ(resultFor(records, "HAR",
                        kernels::Impl::Sonic)
                  .energyJ,
              1.0);
}

} // namespace
} // namespace sonic::bench
