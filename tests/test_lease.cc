/**
 * @file
 * Equivalence suite for the energy-lease fast path (the devirtualized
 * Device::consume). A Device built with DeviceConfig::perOpPowerDraw
 * crosses the virtual PowerSupply::draw boundary for every consume —
 * the reference semantics — while the default leases energy in bulk.
 * The two modes must be observationally indistinguishable: identical
 * outputs, identical Stats totals and cycle counts, identical reboot
 * counts, and the power failure landing on the identical operation,
 * across every supply kind.
 */

#include <gtest/gtest.h>

#include "arch/device.hh"
#include "arch/memory.hh"
#include "dnn/device_net.hh"
#include "kernels/runner.hh"
#include "tests/test_helpers.hh"

namespace sonic::arch
{
namespace
{

Device
makeDevice(std::unique_ptr<PowerSupply> psu, bool per_op_draw)
{
    DeviceConfig config;
    config.perOpPowerDraw = per_op_draw;
    return Device(EnergyProfile::msp430fr5994(), std::move(psu), config);
}

/**
 * A deterministic mixed charge script: single ops, multi-count ops and
 * bulk span charges, the shapes the kernels emit. Returns the indices
 * of script steps whose charge failed, rebooting after each failure
 * exactly as the scheduler would.
 */
struct ScriptResult
{
    std::vector<u32> failureSteps;
    u64 cycles = 0;
    f64 nanojoules = 0.0;
    u64 reboots = 0;
};

ScriptResult
runScript(Device &dev, u32 steps)
{
    ScriptResult out;
    for (u32 i = 0; i < steps; ++i) {
        const auto op = static_cast<Op>(i % kNumOps);
        const u64 count = 1 + (i % 5 == 0 ? i % 37 : 0); // mixed bulk
        try {
            dev.consume(op, count);
        } catch (const PowerFailure &) {
            out.failureSteps.push_back(i);
            dev.reboot();
        }
    }
    out.cycles = dev.cycles();
    out.nanojoules = dev.stats().totalNanojoules();
    out.reboots = dev.rebootCount();
    return out;
}

template <typename MakePsu>
void
expectScriptEquivalence(MakePsu make_psu, u32 steps)
{
    auto leased = makeDevice(make_psu(), /*per_op_draw=*/false);
    auto reference = makeDevice(make_psu(), /*per_op_draw=*/true);
    const auto a = runScript(leased, steps);
    const auto b = runScript(reference, steps);
    ASSERT_EQ(a.failureSteps, b.failureSteps);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.nanojoules, b.nanojoules); // bit-exact: same += sequence
    EXPECT_EQ(a.reboots, b.reboots);
}

TEST(LeaseScript, ContinuousNeverFails)
{
    expectScriptEquivalence(
        [] { return std::make_unique<ContinuousPower>(); }, 4096);
}

TEST(LeaseScript, FailOnceEveryInjectionPointMatches)
{
    // Exhaustive over the injection point: the failing consume call
    // must be the identical one in both modes.
    for (u64 fail_after = 0; fail_after < 300; ++fail_after) {
        auto make = [fail_after] {
            return std::make_unique<FailOnceAfterOps>(fail_after);
        };
        expectScriptEquivalence(make, 512);
    }
}

TEST(LeaseScript, FailEveryPeriodMatches)
{
    // Period 0 degenerates to failing every draw; it must too.
    for (u64 period : {u64{0}, u64{1}, u64{2}, u64{3}, u64{7}, u64{61},
                       u64{127}}) {
        auto make = [period] {
            return std::make_unique<FailEveryOps>(period);
        };
        expectScriptEquivalence(make, 2048);
    }
}

TEST(LeaseScript, CapacitorBrownOutLandsOnSameOp)
{
    // Small capacitors so the script brown-outs many times; the level
    // countdown must follow the identical floating-point sequence.
    for (const f64 farads : {2e-6, 5e-6, 20e-6}) {
        auto make = [farads] {
            return std::make_unique<CapacitorPower>(farads, 0.5e-3);
        };
        auto leased = makeDevice(make(), false);
        auto reference = makeDevice(make(), true);
        const auto a = runScript(leased, 4096);
        const auto b = runScript(reference, 4096);
        ASSERT_EQ(a.failureSteps, b.failureSteps) << farads;
        EXPECT_EQ(a.cycles, b.cycles);
        EXPECT_EQ(a.nanojoules, b.nanojoules);
        EXPECT_EQ(a.reboots, b.reboots);
        // Supply-side state is exact too: the remaining charge and the
        // harvest account settle to the per-op-draw values.
        const auto &cap_a =
            static_cast<const CapacitorPower &>(leased.power());
        const auto &cap_b =
            static_cast<const CapacitorPower &>(reference.power());
        EXPECT_EQ(cap_a.levelNj(), cap_b.levelNj()) << farads;
        EXPECT_EQ(cap_a.harvestedNj(), cap_b.harvestedNj()) << farads;
    }
}

TEST(LeaseScript, RuntimeToggleSettlesCleanly)
{
    // Flipping leasing on/off mid-run books everything consumed so far
    // and keeps totals exact.
    auto dev = makeDevice(std::make_unique<ContinuousPower>(), false);
    auto reference =
        makeDevice(std::make_unique<ContinuousPower>(), true);
    for (u32 i = 0; i < 512; ++i) {
        if (i % 64 == 0)
            dev.setLeasing(i % 128 == 0);
        dev.consume(Op::FixedMul);
        reference.consume(Op::FixedMul);
    }
    EXPECT_EQ(dev.cycles(), reference.cycles());
    EXPECT_EQ(dev.stats().totalNanojoules(),
              reference.stats().totalNanojoules());
    // Settling books lease sums in coarser f64 additions than per-op
    // draws: pure reassociation, bounded by the documented tolerance.
    EXPECT_NEAR(dev.power().harvestedNj(),
                reference.power().harvestedNj(),
                reference.power().harvestedNj()
                    * testutil::kBatchedEnergyRelTol);
}

} // namespace
} // namespace sonic::arch

namespace sonic::kernels
{
namespace
{

using arch::Device;

struct KernelProbe
{
    bool completed = false;
    u64 reboots = 0;
    std::vector<i16> logits;
    u64 cycles = 0;
    f64 nanojoules = 0.0;
    f64 deadSeconds = 0.0;
    u64 opInstances = 0;
};

KernelProbe
runTiny(Impl impl, std::unique_ptr<arch::PowerSupply> psu,
        bool per_op_draw)
{
    arch::DeviceConfig config;
    config.perOpPowerDraw = per_op_draw;
    arch::Device dev(arch::EnergyProfile::msp430fr5994(),
                     std::move(psu), config);
    const auto spec = testutil::tinyNet();
    dnn::DeviceNetwork net(dev, spec);
    net.loadInput(testutil::tinyInput());
    const auto res = runInference(net, impl);
    KernelProbe probe;
    probe.completed = res.completed;
    probe.reboots = res.reboots;
    probe.logits = res.logits;
    probe.cycles = dev.cycles();
    probe.nanojoules = dev.stats().totalNanojoules();
    probe.deadSeconds = dev.deadSeconds();
    for (u32 o = 0; o < arch::kNumOps; ++o)
        probe.opInstances +=
            dev.stats().opCount(static_cast<arch::Op>(o));
    return probe;
}

void
expectProbesEqual(const KernelProbe &a, const KernelProbe &b,
                  u64 context)
{
    ASSERT_EQ(a.completed, b.completed) << context;
    ASSERT_EQ(a.logits, b.logits) << context;
    ASSERT_EQ(a.reboots, b.reboots) << context;
    ASSERT_EQ(a.cycles, b.cycles) << context;
    ASSERT_EQ(a.nanojoules, b.nanojoules) << context;
    ASSERT_EQ(a.opInstances, b.opInstances) << context;
}

TEST(LeaseKernels, ContinuousAllImplsIdentical)
{
    for (auto impl : kAllImpls) {
        const auto a = runTiny(
            impl, std::make_unique<arch::ContinuousPower>(), false);
        const auto b = runTiny(
            impl, std::make_unique<arch::ContinuousPower>(), true);
        expectProbesEqual(a, b, static_cast<u64>(impl));
        ASSERT_TRUE(a.completed);
    }
}

TEST(LeaseKernels, SonicExhaustiveFailOnceSweepIdentical)
{
    // The tentpole acceptance test: a power failure injected at every
    // operation index yields, in both power-accounting modes, the same
    // outputs, the same op/energy totals, the same reboot count — so
    // the brown-out landed on the same operation and recovery did the
    // same work.
    const auto golden = runTiny(
        Impl::Sonic, std::make_unique<arch::ContinuousPower>(), true);
    ASSERT_TRUE(golden.completed);
    // Op instances bound the draw-call count, so sweeping them covers
    // every possible failing draw.
    for (u64 n = 0; n < golden.opInstances + 3; ++n) {
        const auto a = runTiny(
            Impl::Sonic, std::make_unique<arch::FailOnceAfterOps>(n),
            false);
        const auto b = runTiny(
            Impl::Sonic, std::make_unique<arch::FailOnceAfterOps>(n),
            true);
        expectProbesEqual(a, b, n);
        ASSERT_TRUE(a.completed) << n;
        ASSERT_EQ(a.logits, golden.logits) << n;
    }
}

TEST(LeaseKernels, SampledFailOnceSweepsIdenticalAcrossImpls)
{
    for (auto impl : {Impl::Tile8, Impl::Tails, Impl::Base}) {
        const auto golden = runTiny(
            impl, std::make_unique<arch::ContinuousPower>(), true);
        for (u64 n = 0; n < golden.opInstances + 3; n += 13) {
            const auto a = runTiny(
                impl, std::make_unique<arch::FailOnceAfterOps>(n),
                false);
            const auto b = runTiny(
                impl, std::make_unique<arch::FailOnceAfterOps>(n),
                true);
            expectProbesEqual(a, b, n);
        }
    }
}

TEST(LeaseKernels, PeriodicFailuresIdentical)
{
    for (const u64 period : {u64{61}, u64{127}, u64{521}, u64{2053}}) {
        const auto a = runTiny(
            Impl::Sonic, std::make_unique<arch::FailEveryOps>(period),
            false);
        const auto b = runTiny(
            Impl::Sonic, std::make_unique<arch::FailEveryOps>(period),
            true);
        expectProbesEqual(a, b, period);
        ASSERT_TRUE(a.completed) << period;
        EXPECT_GT(a.reboots, 0u) << period;
    }
}

TEST(LeaseKernels, TinyBufferClampsSpansAndStillCompletes)
{
    // A ~450 nJ buffer cannot pay for a full 32-word atomic span;
    // safeSpanWords clamps the chunking so forward progress survives
    // (the regression a fixed span width would reintroduce: the seed's
    // per-element SONIC completes at 3 uF, so the span build must
    // too), and the result still matches continuous power bit-exactly
    // in both power-accounting modes.
    const auto golden = runTiny(
        Impl::Sonic, std::make_unique<arch::ContinuousPower>(), true);
    const auto a = runTiny(
        Impl::Sonic,
        std::make_unique<arch::CapacitorPower>(3e-6, 0.5e-3), false);
    const auto b = runTiny(
        Impl::Sonic,
        std::make_unique<arch::CapacitorPower>(3e-6, 0.5e-3), true);
    expectProbesEqual(a, b, 3);
    ASSERT_TRUE(a.completed);
    EXPECT_GT(a.reboots, 100u);
    EXPECT_EQ(a.logits, golden.logits);

    // Below the seed's own completion boundary (2 uF DNFs in the
    // per-element build as well) the two modes must still agree.
    const auto dnf_a = runTiny(
        Impl::Sonic,
        std::make_unique<arch::CapacitorPower>(2e-6, 0.5e-3), false);
    const auto dnf_b = runTiny(
        Impl::Sonic,
        std::make_unique<arch::CapacitorPower>(2e-6, 0.5e-3), true);
    expectProbesEqual(dnf_a, dnf_b, 2);
    EXPECT_FALSE(dnf_a.completed);
}

TEST(LeaseKernels, CapacitorRunsIdenticalIncludingDeadTime)
{
    for (const f64 farads : {30e-6, 100e-6}) {
        const auto a = runTiny(
            Impl::Sonic,
            std::make_unique<arch::CapacitorPower>(farads, 0.5e-3),
            false);
        const auto b = runTiny(
            Impl::Sonic,
            std::make_unique<arch::CapacitorPower>(farads, 0.5e-3),
            true);
        expectProbesEqual(a, b, static_cast<u64>(farads * 1e6));
        ASSERT_TRUE(a.completed);
        EXPECT_GT(a.reboots, 0u);
        EXPECT_EQ(a.deadSeconds, b.deadSeconds);
    }
}

} // namespace
} // namespace sonic::kernels
