/**
 * @file
 * Tests for the harvested-energy environment subsystem: the
 * piecewise-linear harvest model's integrals, environment references
 * and registry semantics, trace parsing with corruption diagnostics,
 * seeded determinism (same seed, same supply behavior), and the
 * lease-protocol equivalence of every registered environment (leased
 * and per-op-draw devices must brown out on the identical operation).
 */

#include <cmath>
#include <fstream>

#include <gtest/gtest.h>

#include "app/engine.hh"
#include "arch/device.hh"
#include "env/environment.hh"
#include "env/traces.hh"

namespace sonic::env
{
namespace
{

// --- HarvestModel ---------------------------------------------------

TEST(HarvestModel, ConstantRateIntegralsAreExact)
{
    const auto model = HarvestModel::constant(0.5e-3);
    EXPECT_EQ(model.watts(0.0), 0.5e-3);
    EXPECT_EQ(model.watts(123.456), 0.5e-3);
    EXPECT_NEAR(model.energyJoules(7.0, 10.0), 5e-3, 1e-12);
    // Inverse: harvesting 1 mJ at 0.5 mW takes 2 s from any phase.
    EXPECT_NEAR(model.secondsToHarvest(0.0, 1e-3), 2.0, 1e-9);
    EXPECT_NEAR(model.secondsToHarvest(941.5, 1e-3), 2.0, 1e-9);
}

TEST(HarvestModel, PiecewiseRampIntegratesAndInverts)
{
    // 0 W at t=0 ramping to 10 mW at t=10, back down by t=20 (wrap).
    const HarvestModel model({{0.0, 0.0}, {10.0, 10e-3}}, 20.0);
    EXPECT_NEAR(model.watts(5.0), 5e-3, 1e-15);
    EXPECT_NEAR(model.watts(15.0), 5e-3, 1e-15);
    // One period integrates to the triangle area: 1/2 * 20 s * 10 mW.
    EXPECT_NEAR(model.energyJoulesPerPeriod(), 0.1, 1e-12);
    EXPECT_NEAR(model.energyJoules(0.0, 20.0), 0.1, 1e-12);
    EXPECT_NEAR(model.energyJoules(0.0, 40.0), 0.2, 1e-12);
    // Inverse agrees with the forward integral.
    const f64 t = model.secondsToHarvest(2.5, 0.03);
    EXPECT_NEAR(model.energyJoules(2.5, t), 0.03, 1e-9);
}

TEST(HarvestModel, DarkSpansDelayRecharge)
{
    // Solar-like: dark until t=100, then 10 mW until the period ends.
    const HarvestModel model(
        {{0.0, 0.0}, {100.0, 0.0}, {100.5, 10e-3}}, 200.0);
    // Asking for energy at midnight waits out the darkness first.
    const f64 dead = model.secondsToHarvest(0.0, 1e-3);
    EXPECT_GT(dead, 100.0);
    EXPECT_NEAR(model.energyJoules(0.0, dead), 1e-3, 1e-9);
    // Asking during the lit span is fast.
    EXPECT_LT(model.secondsToHarvest(110.0, 1e-4), 1.0);
}

TEST(HarvestModel, InvalidModelsDie)
{
    EXPECT_DEATH(HarvestModel({{1.0, 1e-3}}, 10.0), "start at t = 0");
    EXPECT_DEATH(HarvestModel({{0.0, -1e-3}}, 10.0), "negative");
    EXPECT_DEATH(HarvestModel({{0.0, 1e-3}, {20.0, 1e-3}}, 10.0),
                 "beyond the period");
    // All-dark: could never recharge anything.
    EXPECT_DEATH(HarvestModel({{0.0, 0.0}}, 10.0), "positive energy");
}

// --- EnvRef parsing -------------------------------------------------

TEST(EnvRef, ParsesNamesAndCapacitorOverrides)
{
    EnvRef ref;
    std::string error;
    ASSERT_TRUE(parseEnvRef("solar", &ref, &error));
    EXPECT_EQ(ref.env, "solar");
    EXPECT_EQ(ref.capacitanceFarads, 0.0);
    EXPECT_EQ(ref.label(), "solar");

    ASSERT_TRUE(parseEnvRef("rf-paper@50mF", &ref, &error));
    EXPECT_EQ(ref.env, "rf-paper");
    EXPECT_NEAR(ref.capacitanceFarads, 50e-3, 1e-15);
    EXPECT_EQ(ref.label(), "rf-paper@50mF");

    ASSERT_TRUE(parseEnvRef("x@0.05F", &ref, &error));
    EXPECT_NEAR(ref.capacitanceFarads, 0.05, 1e-15);
    ASSERT_TRUE(parseEnvRef("x@220nF", &ref, &error));
    EXPECT_NEAR(ref.capacitanceFarads, 220e-9, 1e-20);

    EXPECT_FALSE(parseEnvRef("@1mF", &ref, &error));
    EXPECT_NE(error.find("empty name"), std::string::npos);
    EXPECT_FALSE(parseEnvRef("solar@", &ref, &error));
    EXPECT_FALSE(parseEnvRef("solar@12kF", &ref, &error));
    EXPECT_NE(error.find("unit"), std::string::npos);
    EXPECT_FALSE(parseEnvRef("solar@-3uF", &ref, &error));
    EXPECT_NE(error.find("positive"), std::string::npos);
}

// --- Registry -------------------------------------------------------

TEST(EnvRegistry, BuiltinsAreRegistered)
{
    auto &registry = EnvRegistry::instance();
    for (const char *name :
         {"continuous", "rf-paper", "rf-bursty", "solar", "duty-cycle",
          "trace-rf-office", "trace-solar-cloudy"})
        EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_FALSE(registry.contains("no-such-env"));
    EXPECT_EQ(registry.meta("no-such-env"), nullptr);
    EXPECT_TRUE(registry.meta("continuous")->alwaysOn);
    EXPECT_FALSE(registry.meta("solar")->alwaysOn);
}

TEST(EnvRegistry, UnknownEnvironmentDies)
{
    EXPECT_DEATH(EnvRegistry::instance().make({"no-such-env", 0.0}, 1),
                 "registered environments");
}

TEST(EnvRegistry, CapacitorOverrideScalesTheBuffer)
{
    auto &registry = EnvRegistry::instance();
    auto small = registry.make({"rf-paper", 100e-6}, 7);
    auto large = registry.make({"rf-paper", 1e-3}, 7);
    ASSERT_GT(small->capacityNj(), 0.0);
    EXPECT_NEAR(large->capacityNj() / small->capacityNj(), 10.0,
                1e-9);
    auto defaulted = registry.make({"rf-paper", 0.0}, 7);
    EXPECT_EQ(defaulted->capacityNj(), small->capacityNj());
}

// --- Traces ---------------------------------------------------------

TEST(Traces, CsvParsesAndNormalizes)
{
    HarvestModel model;
    std::string error;
    ASSERT_TRUE(parseTraceCsv("# comment\n"
                              "10,0.001\n"
                              "\n"
                              "  20 , 0.002 \n"
                              "30,0.001\n",
                              &model, &error))
        << error;
    EXPECT_EQ(model.periodSeconds(), 20.0); // normalized to t0 = 0
    EXPECT_NEAR(model.watts(5.0), 0.0015, 1e-12);
}

TEST(Traces, CsvCorruptionDiagnostics)
{
    HarvestModel model;
    std::string error;

    EXPECT_FALSE(parseTraceCsv("0 0.001\n1,0.001\n", &model, &error));
    EXPECT_NE(error.find("no comma"), std::string::npos);

    EXPECT_FALSE(parseTraceCsv("0,abc\n1,0.001\n", &model, &error));
    EXPECT_NE(error.find("unparsable"), std::string::npos);

    EXPECT_FALSE(parseTraceCsv("0,0.001\n0,0.002\n", &model, &error));
    EXPECT_NE(error.find("strictly increasing"), std::string::npos);

    EXPECT_FALSE(parseTraceCsv("0,0.001\n1,-0.2\n", &model, &error));
    EXPECT_NE(error.find("negative power"), std::string::npos);

    EXPECT_FALSE(parseTraceCsv("0,0.001\n", &model, &error));
    EXPECT_NE(error.find("at least 2 samples"), std::string::npos);

    EXPECT_FALSE(parseTraceCsv("0,0\n5,0\n10,0\n", &model, &error));
    EXPECT_NE(error.find("no energy"), std::string::npos);
}

TEST(Traces, NonFiniteSamplesAreRejectedWithLineNumbers)
{
    HarvestModel model;
    std::string error;

    // std::stod happily parses "nan" and "inf", and `watts < 0.0` is
    // false for NaN — both used to slip through validation and poison
    // every downstream energy integral.
    EXPECT_FALSE(
        parseTraceCsv("0,0.001\n1,nan\n", &model, &error));
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
    EXPECT_NE(error.find("non-finite power"), std::string::npos);

    EXPECT_FALSE(
        parseTraceCsv("0,0.001\n1,inf\n", &model, &error));
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
    EXPECT_NE(error.find("non-finite power"), std::string::npos);

    EXPECT_FALSE(
        parseTraceCsv("0,0.001\n1,-inf\n", &model, &error));
    EXPECT_NE(error.find("non-finite power"), std::string::npos);

    EXPECT_FALSE(
        parseTraceCsv("nan,0.001\n1,0.001\n", &model, &error));
    EXPECT_NE(error.find("line 1"), std::string::npos) << error;
    EXPECT_NE(error.find("non-finite timestamp"), std::string::npos);

    // A power that overflows f64 ("1e999" -> inf) cannot sneak
    // through either parser: std::stod signals out-of-range.
    EXPECT_FALSE(
        parseTraceCsv("0,0.001\n1,1e999\n", &model, &error));
    EXPECT_FALSE(parseTraceJson(
        "{\"format\": \"sonic-trace\", \"version\": 1, "
        "\"points\": [[0, 0.001], [1, 1e999]]}",
        &model, &error));

    // The shared sample validator (the JSON path's line of defense
    // for programmatically-built samples) names the offending sample.
    EXPECT_FALSE(
        parseTraceCsv("0,0.001\n1, nan\n2,0.001\n", &model, &error));
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(Traces, JsonParsesAndRejectsCorruption)
{
    HarvestModel model;
    std::string error;
    ASSERT_TRUE(parseTraceJson(
        "{\"format\": \"sonic-trace\", \"version\": 1, "
        "\"points\": [[0, 0.001], [10, 0.002], [20, 0.001]]}",
        &model, &error))
        << error;
    EXPECT_EQ(model.periodSeconds(), 20.0);

    EXPECT_FALSE(parseTraceJson(
        "{\"format\": \"other\", \"version\": 1, "
        "\"points\": [[0, 1], [1, 1]]}",
        &model, &error));
    EXPECT_NE(error.find("not a sonic-trace"), std::string::npos);

    EXPECT_FALSE(parseTraceJson(
        "{\"format\": \"sonic-trace\", \"version\": 9, "
        "\"points\": [[0, 1], [1, 1]]}",
        &model, &error));
    EXPECT_NE(error.find("unsupported trace format version 9"),
              std::string::npos);

    EXPECT_FALSE(parseTraceJson(
        "{\"format\": \"sonic-trace\", \"version\": 1, "
        "\"points\": [[0, 1], [1]]}",
        &model, &error));
    EXPECT_NE(error.find("[seconds, watts]"), std::string::npos);

    EXPECT_FALSE(parseTraceJson(
        "{\"format\": \"sonic-trace\", \"version\": 1, "
        "\"points\": [[0, 1], [1, 1]]} extra",
        &model, &error));
    EXPECT_NE(error.find("trailing garbage"), std::string::npos);

    EXPECT_FALSE(parseTraceJson("{\"format\": \"sonic-trace\", "
                                "\"version\": 1}",
                                &model, &error));
    EXPECT_NE(error.find("missing \"points\""), std::string::npos);
}

TEST(Traces, FileRegistrationAndDiagnostics)
{
    const std::string path =
        ::testing::TempDir() + "sonic_env_trace.csv";
    {
        std::ofstream out(path);
        out << "0,0.0005\n60,0.001\n120,0.0005\n";
    }
    auto &registry = EnvRegistry::instance();
    std::string error;
    if (!registry.contains("test-trace-file"))
        ASSERT_TRUE(registry.addTraceFile("test-trace-file", path,
                                          &error))
            << error;
    EXPECT_EQ(registry.meta("test-trace-file")->family, "trace");
    auto psu = registry.make({"test-trace-file", 1e-3}, 3);
    EXPECT_TRUE(psu->intermittent());

    // Duplicate registration is rejected, not overwritten.
    EXPECT_FALSE(
        registry.addTraceFile("test-trace-file", path, &error));
    EXPECT_NE(error.find("already registered"), std::string::npos);

    // Missing and corrupt files produce diagnostics.
    EXPECT_FALSE(registry.addTraceFile("test-missing-trace",
                                       "/no/such/trace.csv", &error));
    EXPECT_NE(error.find("cannot read"), std::string::npos);

    const std::string bad_path =
        ::testing::TempDir() + "sonic_env_trace_bad.csv";
    {
        std::ofstream out(bad_path);
        out << "0,0.001\nbogus line\n";
    }
    EXPECT_FALSE(registry.addTraceFile("test-bad-trace", bad_path,
                                       &error));
    EXPECT_NE(error.find("line 2"), std::string::npos);
    EXPECT_FALSE(registry.contains("test-bad-trace"));
}

// --- Determinism and the lease protocol -----------------------------

/** Drive a supply through a fixed mixed charge script on a Device,
 * returning every observable a schedule comparison needs. */
struct ScriptProbe
{
    std::vector<u32> failureSteps;
    u64 cycles = 0;
    f64 nanojoules = 0.0;
    u64 reboots = 0;
    f64 deadSeconds = 0.0;
};

ScriptProbe
runScript(arch::Device &dev, u32 steps)
{
    ScriptProbe out;
    for (u32 i = 0; i < steps; ++i) {
        const auto op = static_cast<arch::Op>(i % arch::kNumOps);
        const u64 count = 1 + (i % 7 == 0 ? i % 23 : 0);
        try {
            dev.consume(op, count);
        } catch (const arch::PowerFailure &) {
            out.failureSteps.push_back(i);
            dev.reboot();
        }
    }
    out.cycles = dev.cycles();
    out.nanojoules = dev.stats().totalNanojoules();
    out.reboots = dev.rebootCount();
    out.deadSeconds = dev.deadSeconds();
    return out;
}

ScriptProbe
probeEnvironment(const EnvRef &ref, u64 seed, bool per_op_draw,
                 u32 steps = 4096)
{
    arch::DeviceConfig config;
    config.perOpPowerDraw = per_op_draw;
    arch::Device dev(arch::EnergyProfile::msp430fr5994(),
                     EnvRegistry::instance().make(ref, seed), config);
    return runScript(dev, steps);
}

TEST(EnvDeterminism, SameSeedReplaysTheIdenticalSupplyBehavior)
{
    for (const auto &name : EnvRegistry::instance().names()) {
        // Small buffers so the script browns out often.
        const EnvRef ref{name, 5e-6};
        const auto a = probeEnvironment(ref, 0xabc, false);
        const auto b = probeEnvironment(ref, 0xabc, false);
        EXPECT_EQ(a.failureSteps, b.failureSteps) << name;
        EXPECT_EQ(a.cycles, b.cycles) << name;
        EXPECT_EQ(a.nanojoules, b.nanojoules) << name;
        EXPECT_EQ(a.deadSeconds, b.deadSeconds) << name;
    }
}

TEST(EnvDeterminism, SeedsChangeTheDeploymentPhase)
{
    // Distinct seeds boot at distinct points of the solar cycle, so
    // the dead-time pattern differs (failure placement is energy-
    // deterministic, but recharge timing shifts).
    const EnvRef ref{"solar", 5e-6};
    const auto a = probeEnvironment(ref, 1, false);
    const auto b = probeEnvironment(ref, 2, false);
    EXPECT_NE(a.deadSeconds, b.deadSeconds);
}

TEST(EnvLease, EveryRegisteredEnvironmentIsLeaseEquivalent)
{
    // The PR 2 contract, extended to the whole registry: a leased
    // device and a per-op-draw device under the same environment must
    // brown out on the identical operation with identical totals.
    for (const auto &name : EnvRegistry::instance().names()) {
        for (const f64 farads : {3e-6, 20e-6}) {
            const EnvRef ref{name, farads};
            const auto leased = probeEnvironment(ref, 0x5eed, false);
            const auto reference = probeEnvironment(ref, 0x5eed, true);
            ASSERT_EQ(leased.failureSteps, reference.failureSteps)
                << name << "@" << farads;
            EXPECT_EQ(leased.cycles, reference.cycles) << name;
            EXPECT_EQ(leased.nanojoules, reference.nanojoules)
                << name;
            EXPECT_EQ(leased.reboots, reference.reboots) << name;
            EXPECT_EQ(leased.deadSeconds, reference.deadSeconds)
                << name;
        }
    }
}

TEST(EnvLease, HarvestSupplyStateSettlesExactly)
{
    // Supply-side observables settle to the per-op-draw values too.
    auto make = [](bool per_op) {
        arch::DeviceConfig config;
        config.perOpPowerDraw = per_op;
        return config;
    };
    auto psu_a = EnvRegistry::instance().make({"rf-bursty", 5e-6}, 9);
    auto psu_b = EnvRegistry::instance().make({"rf-bursty", 5e-6}, 9);
    auto *raw_a = dynamic_cast<HarvestSupply *>(psu_a.get());
    auto *raw_b = dynamic_cast<HarvestSupply *>(psu_b.get());
    ASSERT_NE(raw_a, nullptr);
    raw_a->setRecordFailures(true);
    raw_b->setRecordFailures(true);
    arch::Device dev_a(arch::EnergyProfile::msp430fr5994(),
                       std::move(psu_a), make(false));
    arch::Device dev_b(arch::EnergyProfile::msp430fr5994(),
                       std::move(psu_b), make(true));
    runScript(dev_a, 4096);
    runScript(dev_b, 4096);
    dev_a.power(); // settle
    dev_b.power();
    EXPECT_GT(raw_a->failureIndices().size(), 0u);
    EXPECT_EQ(raw_a->failureIndices(), raw_b->failureIndices());
    EXPECT_EQ(raw_a->drawsSoFar(), raw_b->drawsSoFar());
    EXPECT_EQ(raw_a->levelNj(), raw_b->levelNj());
    EXPECT_EQ(raw_a->harvestedNj(), raw_b->harvestedNj());
    EXPECT_EQ(raw_a->simSeconds(), raw_b->simSeconds());
}

TEST(EnvClock, DeviceLifetimeFlushesUptimeIntoTheSupplyClock)
{
    // A supply that outlives its Device (the fleet lifetime pattern:
    // one environment powering a sequence of inferences through
    // BorrowedSupply views) must see every second of uptime, including
    // the stretch after the last reboot — otherwise the environment
    // clock lags and between-inference recharges integrate the
    // harvest model at a stale simulated time.
    auto psu = EnvRegistry::instance().make({"duty-cycle", 1e-3}, 11);
    auto *harvest = dynamic_cast<HarvestSupply *>(psu.get());
    ASSERT_NE(harvest, nullptr);
    const f64 phase = harvest->simSeconds();

    f64 live = 0.0, dead = 0.0;
    {
        arch::Device dev(arch::EnergyProfile::msp430fr5994(),
                         std::make_unique<BorrowedSupply>(psu.get()));
        runScript(dev, 2048);
        live = dev.liveSeconds();
        dead = dev.deadSeconds();
    }
    // Clock advanced by the uptime plus the recharge dead time —
    // nothing lost at destruction, with or without reboots. The clock
    // wraps into [0, period) (the model is periodic), so compare
    // modulo the period (NEAR: the clock accumulates per-reboot
    // deltas, a telescoped sum).
    const f64 period = harvest->model().periodSeconds();
    EXPECT_NEAR(harvest->simSeconds(),
                std::fmod(phase + live + dead, period),
                (phase + live + dead) * 1e-12);

    // And a reboot-free lifetime advances it by pure uptime.
    auto psu3 = EnvRegistry::instance().make({"duty-cycle", 50e-3}, 11);
    auto *harvest3 = dynamic_cast<HarvestSupply *>(psu3.get());
    const f64 phase3 = harvest3->simSeconds();
    f64 live3 = 0.0;
    {
        arch::Device dev(arch::EnergyProfile::msp430fr5994(),
                         std::make_unique<BorrowedSupply>(psu3.get()));
        dev.consume(arch::Op::FixedMul, 100);
        live3 = dev.liveSeconds();
        EXPECT_EQ(dev.rebootCount(), 0u);
    }
    EXPECT_DOUBLE_EQ(
        harvest3->simSeconds(),
        std::fmod(phase3 + live3, harvest3->model().periodSeconds()));
}

TEST(EnvClock, ZeroAndNegativeElapseAreNoOps)
{
    auto psu = EnvRegistry::instance().make({"solar", 1e-3}, 3);
    auto *harvest = dynamic_cast<HarvestSupply *>(psu.get());
    ASSERT_NE(harvest, nullptr);
    const f64 before = harvest->simSeconds();
    harvest->elapse(0.0);
    EXPECT_EQ(harvest->simSeconds(), before);
    harvest->elapse(-5.0);
    EXPECT_EQ(harvest->simSeconds(), before);
}

TEST(EnvClock, PhaseWrapsExactlyAtHugeUptime)
{
    // The absorption bug the wrap fixes: an unwrapped f64 accumulator
    // at ~1e17 s absorbs a 1 s increment entirely (1e17 + 1.0 == 1e17
    // in f64), freezing the phase. With wrapping the clock stays in
    // [0, period) where 1 s increments are exactly representable.
    auto psu = EnvRegistry::instance().make({"duty-cycle", 1e-3}, 5);
    auto *harvest = dynamic_cast<HarvestSupply *>(psu.get());
    ASSERT_NE(harvest, nullptr);
    const f64 period = harvest->model().periodSeconds();
    ASSERT_GT(period, 0.0);
    const f64 phase = harvest->simSeconds();

    // Whole periods are identity on the wrapped clock...
    harvest->elapse(1e6 * period);
    EXPECT_NEAR(harvest->simSeconds(), phase, period * 1e-9);
    // ...and a fractional remainder lands at the same phase as the
    // short elapse alone would.
    harvest->elapse(17.0 * period + 0.25 * period);
    EXPECT_NEAR(harvest->simSeconds(),
                std::fmod(phase + 0.25 * period, period), period * 1e-9);
    EXPECT_LT(harvest->simSeconds(), period);

    // The frozen-phase failure mode: after an enormous uptime the
    // clock still registers a small increment instead of absorbing it.
    // (The huge elapse itself rounds once at ulp(1e9 * period) — the
    // wrap's guarantee is that subsequent small increments land from
    // a small base, not that a single giant addition is exact.)
    harvest->elapse(1e9 * period);
    const f64 p1 = harvest->simSeconds();
    EXPECT_LT(p1, period);
    harvest->elapse(0.125 * period);
    EXPECT_NEAR(harvest->simSeconds(),
                std::fmod(p1 + 0.125 * period, period), period * 1e-9);
}

TEST(EnvClock, TimeInvariantSuppliesIgnoreElapse)
{
    // elapse() is a PowerSupply-wide notification; supplies with no
    // environment clock must accept it silently at any magnitude.
    arch::ContinuousPower continuous;
    continuous.elapse(0.0);
    continuous.elapse(1e18);
    EXPECT_FALSE(continuous.intermittent());

    arch::CapacitorPower cap(100e-6, 0.5e-3);
    const f64 level = cap.levelNj();
    cap.elapse(0.0);
    cap.elapse(1e18);
    EXPECT_EQ(cap.levelNj(), level);

    arch::SchedulePower sched({3, 5});
    sched.elapse(1e18);
    EXPECT_EQ(sched.drawsSoFar(), 0u);
    EXPECT_TRUE(sched.draw(1.0));
}

// --- Sweep integration ----------------------------------------------

TEST(EnvSweep, EnvironmentAxisExpandsAndReseeds)
{
    app::SweepPlan plan;
    plan.nets({"golden"})
        .impls({kernels::Impl::Sonic})
        .environmentLabels({"rf-paper@1mF", "solar"});
    EXPECT_EQ(plan.size(), 2u);
    const auto specs = plan.expand();
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0].environment.label(), "rf-paper@1mF");
    EXPECT_EQ(specs[1].environment.label(), "solar");
    EXPECT_NE(specs[0].seed, specs[1].seed);

    // The empty EnvRef keeps pre-axis seeds; a set one reseeds.
    app::SweepPlan plain;
    plain.nets({"golden"}).impls({kernels::Impl::Sonic});
    EXPECT_NE(plain.expand()[0].seed, specs[0].seed);
    app::SweepPlan defaulted;
    defaulted.nets({"golden"})
        .impls({kernels::Impl::Sonic})
        .environments({{}});
    EXPECT_EQ(plain.expand()[0].seed, defaulted.expand()[0].seed);
}

TEST(EnvSweep, UnknownEnvironmentInPlanDies)
{
    app::SweepPlan plan;
    EXPECT_DEATH(plan.environmentLabels({"no-such-env"}),
                 "registered environments");
}

TEST(EnvSweep, EngineRunsUnderAnEnvironmentDeterministically)
{
    app::SweepPlan plan;
    plan.nets({"golden"})
        .impls({kernels::Impl::Sonic, kernels::Impl::Tile8})
        .environmentLabels(
            {"trace-rf-office@100uF", "duty-cycle@100uF"});
    app::Engine serial(app::EngineOptions{1});
    app::Engine parallel(app::EngineOptions{4});
    const auto a = serial.run(plan);
    const auto b = parallel.run(plan);
    ASSERT_EQ(a.size(), 4u);
    for (u64 i = 0; i < a.size(); ++i) {
        EXPECT_TRUE(a[i].result.completed) << i;
        EXPECT_GT(a[i].result.reboots, 0u) << i;
        EXPECT_EQ(a[i].result.reboots, b[i].result.reboots) << i;
        EXPECT_EQ(a[i].result.logits, b[i].result.logits) << i;
        EXPECT_EQ(a[i].result.deadSeconds, b[i].result.deadSeconds)
            << i;
        EXPECT_EQ(a[i].result.energyJ, b[i].result.energyJ) << i;
    }
}

} // namespace
} // namespace sonic::env
