/**
 * @file
 * Tests for the fleet simulator: deterministic device assignment,
 * single-device lifetime telemetry, DNF accounting, the CSV sink, and
 * the headline contract — the aggregate FleetSummary (and its JSON
 * rendering) is bit-identical across 1/2/8 worker threads.
 */

#include <algorithm>
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "fleet/fleet.hh"
#include "fleet/round_cache.hh"

namespace sonic::fleet
{
namespace
{

/** A fast mixed fleet over the tiny golden workload. */
FleetPlan
goldenFleet(u32 devices)
{
    FleetPlan plan;
    plan.devices = devices;
    plan.nets = {"golden"};
    plan.impls = {kernels::Impl::Sonic, kernels::Impl::Tile8};
    plan.environments = {{"rf-paper", 100e-6},
                         {"trace-rf-office", 50e-6},
                         {"duty-cycle", 100e-6},
                         {"continuous", 0.0}};
    plan.maxInferencesPerDevice = 2;
    plan.baseSeed = 0xf1ee7;
    return plan;
}

/** goldenFleet with the pipeline axis exercised. */
FleetPlan
pipelineFleet(u32 devices)
{
    auto plan = goldenFleet(devices);
    plan.pipelines = {"wildlife", "infer-only", "lossy-uplink"};
    return plan;
}

TEST(FleetPlan, AssignmentsAreDeterministicAndCoverTheLists)
{
    const auto plan = goldenFleet(64);
    bool saw_second_impl = false, saw_second_env = false;
    for (u32 d = 0; d < plan.devices; ++d) {
        const auto a = plan.assignmentFor(d);
        const auto b = plan.assignmentFor(d);
        EXPECT_EQ(a.net, b.net);
        EXPECT_EQ(a.impl, b.impl);
        EXPECT_EQ(a.environment.label(), b.environment.label());
        EXPECT_EQ(a.seed, b.seed);
        EXPECT_EQ(a.deviceIndex, d);
        saw_second_impl |= a.impl == kernels::Impl::Tile8;
        saw_second_env |= a.environment.env == "duty-cycle";
    }
    EXPECT_TRUE(saw_second_impl);
    EXPECT_TRUE(saw_second_env);

    // A different base seed deals a different fleet.
    auto reseeded = plan;
    reseeded.baseSeed = 123;
    bool any_differs = false;
    for (u32 d = 0; d < plan.devices; ++d)
        any_differs |=
            reseeded.assignmentFor(d).seed != plan.assignmentFor(d).seed;
    EXPECT_TRUE(any_differs);
}

TEST(FleetPlan, InvalidDistributionsDie)
{
    auto plan = goldenFleet(4);
    plan.nets = {"no-such-model"};
    EXPECT_DEATH(plan.validate(), "registered models");
    auto plan2 = goldenFleet(4);
    plan2.environments = {{"no-such-env", 0.0}};
    EXPECT_DEATH(plan2.validate(), "registered environments");
}

TEST(Fleet, DeviceLifetimeProducesConsistentTelemetry)
{
    const auto plan = goldenFleet(8);
    for (u32 d = 0; d < plan.devices; ++d) {
        const auto t = simulateDevice(plan, d);
        EXPECT_LE(t.inferencesCompleted,
                  plan.maxInferencesPerDevice);
        EXPECT_EQ(t.inferenceSeconds.size(), t.inferencesCompleted);
        EXPECT_GT(t.liveSeconds, 0.0);
        EXPECT_GT(t.energyJ, 0.0);
        EXPECT_GE(t.harvestedJ, 0.0);
        if (!t.diedNonTerminating) {
            EXPECT_EQ(t.inferencesCompleted,
                      plan.maxInferencesPerDevice)
                << "device " << d
                << " stopped early without a DNF verdict";
        }
        // Rates are self-consistent.
        if (t.inferencesCompleted > 0)
            EXPECT_NEAR(t.energyPerInferenceJ() * t.inferencesCompleted,
                        t.energyJ, 1e-12);
    }
}

TEST(Fleet, NonTerminatingKernelsAreAccountedAsDnf)
{
    // Base keeps loop state in volatile memory: on a tiny harvested
    // buffer it can never finish — the fleet must report it as a DNF
    // device, not hang or crash.
    FleetPlan plan;
    plan.devices = 3;
    plan.nets = {"golden"};
    plan.impls = {kernels::Impl::Base};
    plan.environments = {{"rf-paper", 5e-6}};
    plan.maxInferencesPerDevice = 2;
    const auto summary = runFleet(plan, FleetOptions{1});
    EXPECT_EQ(summary.total.devices, 3u);
    EXPECT_EQ(summary.total.dnfDevices, 3u);
    EXPECT_EQ(summary.total.inferences, 0u);
    EXPECT_GT(summary.total.reboots, 0u);
}

TEST(Fleet, SummaryIsBitIdenticalAcrossThreadCounts)
{
    const auto plan = goldenFleet(48);
    std::string reference_json;
    std::string reference_csv;
    for (const u32 threads : {1u, 2u, 8u}) {
        std::ostringstream csv;
        FleetCsvSink sink(csv);
        const auto summary =
            runFleet(plan, FleetOptions{threads}, {&sink});
        EXPECT_EQ(summary.devices, plan.devices);
        EXPECT_GT(summary.total.inferences, 0u);
        const std::string json = summary.toJson();
        if (reference_json.empty()) {
            reference_json = json;
            reference_csv = csv.str();
        } else {
            // Bit-identical aggregate summary and per-device stream.
            EXPECT_EQ(json, reference_json) << threads;
            EXPECT_EQ(csv.str(), reference_csv) << threads;
        }
    }
    // The JSON carries every breakdown group.
    EXPECT_NE(reference_json.find("\"byEnvironment\""),
              std::string::npos);
    EXPECT_NE(reference_json.find("\"byImpl\""), std::string::npos);
    EXPECT_NE(reference_json.find("\"byNet\""), std::string::npos);
    EXPECT_NE(reference_json.find("\"latencyP95Seconds\""),
              std::string::npos);
}

TEST(Fleet, CsvSinkStreamsOneRowPerDeviceInOrder)
{
    const auto plan = goldenFleet(6);
    std::ostringstream csv;
    FleetCsvSink sink(csv);
    runFleet(plan, FleetOptions{4}, {&sink});

    std::istringstream lines(csv.str());
    std::string line;
    std::vector<std::string> rows;
    while (std::getline(lines, line))
        rows.push_back(line);
    ASSERT_EQ(rows.size(), 1u + plan.devices);
    EXPECT_EQ(rows[0].rfind("device,net,impl,environment", 0), 0u);
    for (u32 d = 0; d < plan.devices; ++d)
        EXPECT_EQ(rows[1 + d].rfind(std::to_string(d) + ",", 0), 0u)
            << rows[1 + d];
}

TEST(Fleet, ContinuousDevicesNeverRebootAndHarvestWhatTheyUse)
{
    FleetPlan plan;
    plan.devices = 2;
    plan.nets = {"golden"};
    plan.impls = {kernels::Impl::Sonic};
    plan.environments = {{"continuous", 0.0}};
    plan.maxInferencesPerDevice = 3;
    const auto summary = runFleet(plan, FleetOptions{1});
    EXPECT_EQ(summary.total.reboots, 0u);
    EXPECT_EQ(summary.total.inferences, 2u * 3u);
    EXPECT_EQ(summary.total.deadSeconds, 0.0);
    EXPECT_NEAR(summary.total.harvestedJ, summary.total.energyJ,
                summary.total.energyJ * 1e-9);
}

TEST(FleetPlan, PipelineAxisIsDealtAndValidated)
{
    const auto plan = pipelineFleet(64);
    bool saw_wildlife = false, saw_infer_only = false;
    for (u32 d = 0; d < plan.devices; ++d) {
        const auto a = plan.assignmentFor(d);
        EXPECT_EQ(a.pipeline, plan.assignmentFor(d).pipeline);
        saw_wildlife |= a.pipeline == "wildlife";
        saw_infer_only |= a.pipeline == "infer-only";
    }
    EXPECT_TRUE(saw_wildlife);
    EXPECT_TRUE(saw_infer_only);

    auto bad = pipelineFleet(4);
    bad.pipelines = {"no-such-pipeline"};
    EXPECT_DEATH(bad.validate(), "registered pipelines");

    // The pipeline axis rides on an independent hash lane: adding it
    // did not reshuffle the pre-pipeline assignment of any device.
    const auto legacy = goldenFleet(64);
    for (u32 d = 0; d < legacy.devices; ++d) {
        const auto a = legacy.assignmentFor(d);
        const auto b = pipelineFleet(64).assignmentFor(d);
        EXPECT_EQ(a.net, b.net);
        EXPECT_EQ(a.impl, b.impl);
        EXPECT_EQ(a.environment.label(), b.environment.label());
        EXPECT_EQ(a.seed, b.seed);
    }
}

TEST(Fleet, PipelineDevicesDeliverAndAccountRadioEnergy)
{
    FleetPlan plan;
    plan.devices = 6;
    plan.nets = {"golden"};
    plan.impls = {kernels::Impl::Sonic};
    plan.environments = {{"continuous", 0.0}};
    plan.pipelines = {"wildlife"};
    plan.maxInferencesPerDevice = 2;
    const auto summary = runFleet(plan, FleetOptions{1});
    // Lossless link + continuous power: every inference delivers on
    // the first attempt.
    EXPECT_EQ(summary.total.inferences, 6u * 2u);
    EXPECT_EQ(summary.total.resultsDelivered, 6u * 2u);
    EXPECT_EQ(summary.total.txAttempts, 6u * 2u);
    EXPECT_EQ(summary.total.txRetries, 0u);
    EXPECT_EQ(summary.total.txGaveUpDevices, 0u);
    EXPECT_GT(summary.total.radioEnergyJ, 0.0);
    EXPECT_GT(summary.total.senseEnergyJ, 0.0);
    EXPECT_LT(summary.total.radioEnergyJ + summary.total.senseEnergyJ,
              summary.total.energyJ);
    EXPECT_GT(summary.deliveryP50Seconds, 0.0);
    EXPECT_LE(summary.deliveryP50Seconds, summary.deliveryP99Seconds);
}

/**
 * Satellite invariant: every breakdown axis partitions the fleet, so
 * each by-group map must sum exactly to the fleet totals — integer
 * counters bit-exactly, f64 accumulations to reassociation tolerance —
 * under every thread count.
 */
TEST(Fleet, GroupBreakdownsSumToFleetTotals)
{
    const auto plan = pipelineFleet(48);
    for (const u32 threads : {1u, 2u, 8u}) {
        const auto summary = runFleet(plan, FleetOptions{threads});
        ASSERT_GT(summary.total.resultsDelivered, 0u);
        const std::map<std::string, GroupStats> *groups[] = {
            &summary.byEnvironment, &summary.byImpl, &summary.byNet,
            &summary.byPipeline};
        for (const auto *by : groups) {
            GroupStats sum;
            for (const auto &[name, g] : *by) {
                EXPECT_FALSE(name.empty());
                EXPECT_GT(g.devices, 0u);
                sum.devices += g.devices;
                sum.dnfDevices += g.dnfDevices;
                sum.failedDevices += g.failedDevices;
                sum.inferences += g.inferences;
                sum.reboots += g.reboots;
                sum.liveSeconds += g.liveSeconds;
                sum.deadSeconds += g.deadSeconds;
                sum.energyJ += g.energyJ;
                sum.harvestedJ += g.harvestedJ;
                sum.resultsDelivered += g.resultsDelivered;
                sum.txGaveUpDevices += g.txGaveUpDevices;
                sum.txAttempts += g.txAttempts;
                sum.txRetries += g.txRetries;
                sum.radioEnergyJ += g.radioEnergyJ;
                sum.senseEnergyJ += g.senseEnergyJ;
                sum.txBackoffSeconds += g.txBackoffSeconds;
            }
            EXPECT_EQ(sum.devices, summary.total.devices);
            EXPECT_EQ(sum.dnfDevices, summary.total.dnfDevices);
            EXPECT_EQ(sum.failedDevices, summary.total.failedDevices);
            EXPECT_EQ(sum.inferences, summary.total.inferences);
            EXPECT_EQ(sum.reboots, summary.total.reboots);
            EXPECT_EQ(sum.resultsDelivered,
                      summary.total.resultsDelivered);
            EXPECT_EQ(sum.txGaveUpDevices,
                      summary.total.txGaveUpDevices);
            EXPECT_EQ(sum.txAttempts, summary.total.txAttempts);
            EXPECT_EQ(sum.txRetries, summary.total.txRetries);
            const auto near = [](f64 a, f64 b) {
                EXPECT_NEAR(a, b,
                            std::max(std::abs(b), 1.0) * 1e-9);
            };
            near(sum.liveSeconds, summary.total.liveSeconds);
            near(sum.deadSeconds, summary.total.deadSeconds);
            near(sum.energyJ, summary.total.energyJ);
            near(sum.harvestedJ, summary.total.harvestedJ);
            near(sum.radioEnergyJ, summary.total.radioEnergyJ);
            near(sum.senseEnergyJ, summary.total.senseEnergyJ);
            near(sum.txBackoffSeconds, summary.total.txBackoffSeconds);
        }
    }
}

TEST(Fleet, PipelineSummaryIsBitIdenticalAcrossThreadCounts)
{
    const auto plan = pipelineFleet(48);
    std::string reference_json;
    std::string reference_csv;
    for (const u32 threads : {1u, 2u, 8u}) {
        std::ostringstream csv;
        FleetCsvSink sink(csv);
        const auto summary =
            runFleet(plan, FleetOptions{threads}, {&sink});
        EXPECT_GT(summary.total.resultsDelivered, 0u);
        const std::string json = summary.toJson();
        if (reference_json.empty()) {
            reference_json = json;
            reference_csv = csv.str();
        } else {
            EXPECT_EQ(json, reference_json) << threads;
            EXPECT_EQ(csv.str(), reference_csv) << threads;
        }
    }
    EXPECT_NE(reference_json.find("\"byPipeline\""), std::string::npos);
    EXPECT_NE(reference_json.find("\"deliveryP95Seconds\""),
              std::string::npos);
    EXPECT_NE(reference_csv.find(",wildlife,"), std::string::npos);
}

/** Look up a named scenario's plan, shrunk for test runtime. */
FleetPlan
scenarioPlan(const std::string &name, u32 devices)
{
    for (const auto &scenario : namedScenarios()) {
        if (scenario.name == name) {
            auto plan = scenario.plan;
            plan.devices = devices;
            return plan;
        }
    }
    ADD_FAILURE() << "missing scenario " << name;
    return FleetPlan{};
}

/**
 * The tentpole contract: round-trace memoization changes nothing about
 * the telemetry. Memoized and unmemoized fleets produce byte-identical
 * summary JSON and per-device CSV at every thread count, on both
 * acceptance scenarios.
 */
TEST(Fleet, MemoizedFleetsMatchUnmemoizedBitExactly)
{
    for (const char *name : {"mixed-1k", "wildlife-day"}) {
        const auto plan =
            scenarioPlan(name, name[0] == 'm' ? 32u : 24u);
        std::string reference_json, reference_csv;
        for (const bool cached : {false, true}) {
            for (const u32 threads : {1u, 2u, 8u}) {
                FleetOptions options;
                options.threads = threads;
                options.useCache = cached;
                // Exercise the production replay path, not the
                // debug re-execution cross-check.
                options.verifyCache = false;
                std::ostringstream csv;
                FleetCsvSink sink(csv);
                const auto summary = runFleet(plan, options, {&sink});
                EXPECT_GT(summary.total.inferences, 0u);
                EXPECT_EQ(cached, summary.cache.lookups() > 0) << name;
                const std::string json = summary.toJson();
                if (reference_json.empty()) {
                    reference_json = json;
                    reference_csv = csv.str();
                } else {
                    EXPECT_EQ(json, reference_json)
                        << name << " cached=" << cached
                        << " threads=" << threads;
                    EXPECT_EQ(csv.str(), reference_csv)
                        << name << " cached=" << cached
                        << " threads=" << threads;
                }
            }
        }
    }
}

/**
 * Every RoundKey field must participate in lookup identity: mutating
 * any one coordinate misses while the original still hits. (Keys are
 * equality-compared in full, so this holds even on hash collisions.)
 */
TEST(RoundCache, EveryKeyFieldAffectsLookup)
{
    RoundCache cache;
    RoundKey key;
    key.netIndex = 1;
    key.implIndex = 2;
    key.pipelineIndex = 3;
    key.inputIndex = 4;
    key.capacityNjBits = 0x3f50624dd2f1a9fcull; // 0.001 as f64 bits
    RoundTrace trace;
    trace.liveSeconds = 1.5;
    trace.liveDeltas = {0.5, 1.0};
    trace.reboots = 1;
    ASSERT_NE(cache.insert(key, trace), nullptr);
    ASSERT_NE(cache.find(key), nullptr);
    EXPECT_EQ(cache.find(key)->liveSeconds, 1.5);

    const auto expectMiss = [&cache, &key](auto mutate) {
        RoundKey probe = key;
        mutate(probe);
        EXPECT_EQ(cache.find(probe), nullptr);
        EXPECT_NE(cache.find(key), nullptr); // original unaffected
    };
    expectMiss([](RoundKey &k) { k.netIndex ^= 1; });
    expectMiss([](RoundKey &k) { k.implIndex ^= 1; });
    expectMiss([](RoundKey &k) { k.pipelineIndex ^= 1; });
    expectMiss([](RoundKey &k) { k.inputIndex ^= 1; });
    expectMiss([](RoundKey &k) { k.capacityNjBits ^= 1; });
}

/**
 * The verification mode (always on in debug builds): every cache hit
 * re-executes the round and bitwise-compares the full trace including
 * the NVM digest. A verified run must still reproduce the unmemoized
 * summary exactly, and must actually have verified something.
 */
TEST(Fleet, CacheVerificationCrossChecksEveryHit)
{
    const auto plan = goldenFleet(24);
    FleetOptions verified;
    verified.threads = 2;
    verified.useCache = true;
    verified.verifyCache = true;
    const auto checked = runFleet(plan, verified);
    EXPECT_GT(checked.cache.roundHits, 0u);

    FleetOptions plain;
    plain.threads = 1;
    plain.useCache = false;
    const auto reference = runFleet(plan, plain);
    EXPECT_EQ(checked.toJson(), reference.toJson());
}

/**
 * Satellite fix: the horizon gate is uniform across rounds. Round 0
 * always runs (a fully-charged buffer recharges in zero seconds), and
 * a between-round recharge that would overshoot the horizon is clipped
 * at it instead of accruing the full refill time.
 */
TEST(Fleet, HorizonClipsBetweenRoundRecharges)
{
    FleetPlan plan;
    plan.nets = {"golden"};
    plan.impls = {kernels::Impl::Sonic};
    plan.environments = {{"rf-paper", 100e-6}};
    plan.devices = 1;
    plan.maxInferencesPerDevice = 1;
    const auto one_round = simulateDevice(plan, 0);
    ASSERT_EQ(one_round.inferencesCompleted, 1u);
    const f64 round_seconds = one_round.totalSeconds();
    ASSERT_GT(round_seconds, 0.0);

    // Horizon lands inside the recharge before round 1: the device
    // sleeps only up to the horizon, bit-for-bit.
    auto clipped = plan;
    clipped.maxInferencesPerDevice = 0;
    clipped.horizonSeconds = round_seconds * 1.25;
    const auto t = simulateDevice(clipped, 0);
    EXPECT_EQ(t.inferencesCompleted, 1u);
    EXPECT_NEAR(t.totalSeconds(), clipped.horizonSeconds,
                clipped.horizonSeconds * 1e-12);

    // Horizon shorter than the first round: round 0 still runs in
    // full (its pre-round recharge is the zero-second no-op), so the
    // lifetime is exactly that one round.
    auto tiny = plan;
    tiny.maxInferencesPerDevice = 0;
    tiny.horizonSeconds = round_seconds * 0.5;
    const auto t0 = simulateDevice(tiny, 0);
    EXPECT_EQ(t0.inferencesCompleted, 1u);
    EXPECT_EQ(t0.totalSeconds(), round_seconds);
}

/**
 * Cache telemetry is reported on the summary struct but deliberately
 * kept out of the JSON artifact, which must stay byte-identical
 * between memoized and --no-cache runs.
 */
TEST(Fleet, CacheStatsAreReportedButNotSerialized)
{
    const auto plan = goldenFleet(32);
    FleetOptions options;
    options.threads = 1;
    options.verifyCache = false;
    const auto summary = runFleet(plan, options);
    EXPECT_GT(summary.cache.lookups(), 0u);
    EXPECT_GT(summary.cache.roundHits, 0u);
    EXPECT_GT(summary.cache.lifetimeHits, 0u); // continuous devices
    EXPECT_GT(summary.cache.hitRate(), 0.0);
    EXPECT_LE(summary.cache.hitRate(), 1.0);
    const std::string json = summary.toJson();
    EXPECT_EQ(json.find("roundHits"), std::string::npos);
    EXPECT_EQ(json.find("hitRate"), std::string::npos);
}

} // namespace
} // namespace sonic::fleet
