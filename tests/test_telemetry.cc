/**
 * @file
 * The .sonicz telemetry container: codec primitives (varints, zigzag,
 * the in-tree LZ), randomized lossless round trips for both schemas,
 * sonic_cat subset semantics, and corruption/truncation rejection.
 *
 * The headline property is byte-identity: re-emitting a .sonicz file
 * through telemetry::catSonicz must reproduce the direct
 * CsvSink/JsonSink/FleetCsvSink/FleetJsonSink output byte for byte,
 * including awkward strings (commas, quotes, newlines) and f64 bit
 * patterns a fixed decimal precision would destroy.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <functional>
#include <random>
#include <sstream>

#include "telemetry/aggregate.hh"
#include "telemetry/cat.hh"
#include "telemetry/codec.hh"
#include "telemetry/sonicz.hh"

namespace sonic
{
namespace
{

using telemetry::Bytes;

// --- Corpus generators ----------------------------------------------

/** Awkward-but-legal telemetry strings: CSV quoting and JSON escaping
 * must survive the round trip. */
const char *const kAwkwardNames[] = {
    "MNIST",
    "HAR",
    "OkG",
    "net,with,commas",
    "net \"quoted\"",
    "net\nnewline",
    "  padded  ",
};

f64
randomF64(std::mt19937_64 &rng)
{
    switch (rng() % 8) {
      case 0: return 0.0;
      case 1: return -0.0;
      case 2: return 1e300 * (rng() % 2 ? 1.0 : -1.0);
      case 3: return 5e-324; // smallest denormal
      case 4: return 0.1;
      case 5: return 1.0 / 3.0;
      case 6: return static_cast<f64>(rng() % 100000);
      default: {
        // Random finite bit pattern.
        for (;;) {
            const f64 v = std::bit_cast<f64>(rng());
            if (std::isfinite(v))
                return v;
        }
      }
    }
}

app::SweepRecord
randomSweepRecord(std::mt19937_64 &rng, u32 index)
{
    const auto impls = kernels::ImplRegistry::instance().all();
    app::SweepRecord record;
    record.planIndex = index;
    auto &spec = record.spec;
    spec.net = kAwkwardNames[rng() % std::size(kAwkwardNames)];
    spec.impl = impls[rng() % impls.size()];
    spec.power = app::kAllPower[rng() % std::size(app::kAllPower)];
    spec.profile =
        app::kAllProfiles[rng() % std::size(app::kAllProfiles)];
    spec.sampleIndex = static_cast<u32>(rng() % 16);
    spec.seed = rng();
    if (rng() % 3 == 0) {
        spec.environment.env =
            kAwkwardNames[rng() % std::size(kAwkwardNames)];
        spec.environment.capacitanceFarads = randomF64(rng);
    }
    if (rng() % 4 == 0) {
        const u64 len = rng() % 5;
        for (u64 i = 0; i < len; ++i)
            spec.failureSchedule.push_back(rng() % 1000);
    }
    spec.captureNvmDigests = rng() % 2 == 0;

    auto &r = record.result;
    // The status triple has three legal states; the sinks and the
    // .sonicz status column encode exactly those.
    switch (rng() % 3) {
      case 0: r.completed = true; break;
      case 1: r.nonTerminating = true; break;
      default: break; // "fail"
    }
    r.reboots = rng() % 100000;
    r.tasksExecuted = rng();
    r.liveSeconds = randomF64(rng);
    r.deadSeconds = randomF64(rng);
    r.totalSeconds = randomF64(rng);
    r.energyJ = randomF64(rng);
    r.harvestedJ = randomF64(rng);
    r.predictedClass = static_cast<u32>(rng() % 10);
    r.tailsTileWords = static_cast<u32>(rng() % 4096);
    r.scheduleFired = rng() % 16;
    r.opInstances = rng() % 1000000;
    r.finalNvmDigest = rng();
    const u64 digests = rng() % 4;
    for (u64 i = 0; i < digests; ++i)
        r.rebootDigests.push_back(rng());
    const u64 layers = rng() % 4;
    for (u64 i = 0; i < layers; ++i)
        r.layers.push_back(
            {kAwkwardNames[rng() % std::size(kAwkwardNames)],
             randomF64(rng), randomF64(rng), randomF64(rng)});
    const u64 ops = rng() % 4;
    for (u64 i = 0; i < ops; ++i)
        r.energyByOp[kAwkwardNames[rng() % std::size(kAwkwardNames)]] =
            randomF64(rng);
    const u64 logits = rng() % 6;
    for (u64 i = 0; i < logits; ++i)
        r.logits.push_back(static_cast<i16>(rng()));
    return record;
}

fleet::DeviceTelemetry
randomFleetTelemetry(std::mt19937_64 &rng, u32 index)
{
    const auto impls = kernels::ImplRegistry::instance().all();
    fleet::DeviceTelemetry t;
    auto &a = t.assignment;
    a.deviceIndex = index;
    a.net = kAwkwardNames[rng() % std::size(kAwkwardNames)];
    a.impl = impls[rng() % impls.size()];
    a.environment.env =
        kAwkwardNames[rng() % std::size(kAwkwardNames)];
    a.environment.capacitanceFarads =
        rng() % 2 ? randomF64(rng) : 0.0;
    a.pipeline = rng() % 2 ? "infer-only" : "wildlife";
    a.seed = rng();
    switch (rng() % 3) {
      case 0: t.diedNonTerminating = true; break;
      case 1: t.failedIncomplete = true; break;
      default: break; // "ok"
    }
    t.inferencesCompleted = static_cast<u32>(rng() % 100);
    t.reboots = rng() % 1000000;
    t.liveSeconds = randomF64(rng);
    t.deadSeconds = randomF64(rng);
    t.energyJ = randomF64(rng);
    t.harvestedJ = randomF64(rng);
    t.resultsDelivered = static_cast<u32>(rng() % 50);
    t.txGaveUpRounds = static_cast<u32>(rng() % 5);
    t.txAttempts = rng() % 500;
    t.txRetries = rng() % 100;
    t.radioEnergyJ = randomF64(rng);
    t.senseEnergyJ = randomF64(rng);
    t.txBackoffSeconds = randomF64(rng);
    t.inferenceSecondsSum = randomF64(rng);
    t.deliverySecondsSum = randomF64(rng);
    return t;
}

std::string
directSweepOutput(const std::vector<app::SweepRecord> &records,
                  bool json)
{
    std::ostringstream os;
    app::CsvSink csv(os);
    app::JsonSink js(os);
    app::ResultSink &sink =
        json ? static_cast<app::ResultSink &>(js) : csv;
    sink.begin(records.size());
    for (const auto &record : records)
        sink.add(record);
    sink.end();
    return os.str();
}

std::string
directFleetOutput(const std::vector<fleet::DeviceTelemetry> &rows,
                  bool json)
{
    std::ostringstream os;
    fleet::FleetCsvSink csv(os);
    fleet::FleetJsonSink js(os);
    fleet::FleetSink &sink =
        json ? static_cast<fleet::FleetSink &>(js) : csv;
    sink.begin(rows.size());
    for (const auto &row : rows)
        sink.add(row);
    sink.end();
    return os.str();
}

std::string
packSweep(const std::vector<app::SweepRecord> &records)
{
    std::ostringstream os;
    telemetry::SoniczSweepSink sink(os);
    sink.begin(records.size());
    for (const auto &record : records)
        sink.add(record);
    sink.end();
    return os.str();
}

std::string
packFleet(const std::vector<fleet::DeviceTelemetry> &rows,
          u32 encoder_threads = 0)
{
    std::ostringstream os;
    telemetry::SoniczFleetSink sink(os, encoder_threads);
    sink.begin(rows.size());
    for (const auto &row : rows)
        sink.add(row);
    sink.end();
    return os.str();
}

std::string
catToString(const std::string &packed,
            const telemetry::CatOptions &options)
{
    std::istringstream in(packed);
    std::ostringstream out;
    std::string error;
    EXPECT_TRUE(telemetry::catSonicz(in, out, options, &error))
        << error;
    return out.str();
}

// --- Codec primitives -----------------------------------------------

TEST(TelemetryCodec, VarintRoundTrip)
{
    std::mt19937_64 rng(0x5eed);
    std::vector<u64> values = {0, 1, 127, 128, 16383, 16384,
                               ~0ull, ~0ull - 1, 1ull << 63};
    for (u32 i = 0; i < 200; ++i)
        values.push_back(rng() >> (rng() % 64));
    Bytes buffer;
    for (const u64 v : values)
        telemetry::putVarint(buffer, v);
    u64 pos = 0;
    for (const u64 expected : values) {
        u64 got = 0;
        ASSERT_TRUE(telemetry::getVarint(buffer, &pos, &got));
        EXPECT_EQ(got, expected);
    }
    EXPECT_EQ(pos, buffer.size());
}

TEST(TelemetryCodec, VarintRejectsTruncationAndOverflow)
{
    u64 pos = 0, value = 0;
    const Bytes truncated = {0x80, 0x80};
    EXPECT_FALSE(telemetry::getVarint(truncated, &pos, &value));

    // 10 bytes whose final byte carries bits beyond 2^64.
    Bytes overlong(9, 0x80);
    overlong.push_back(0x02);
    pos = 0;
    EXPECT_FALSE(telemetry::getVarint(overlong, &pos, &value));

    // ~0ull itself round-trips (final byte 0x01).
    Bytes max_ok;
    telemetry::putVarint(max_ok, ~0ull);
    pos = 0;
    ASSERT_TRUE(telemetry::getVarint(max_ok, &pos, &value));
    EXPECT_EQ(value, ~0ull);
}

TEST(TelemetryCodec, ZigzagRoundTrip)
{
    const i64 values[] = {0, 1, -1, 2, -2, i64{1} << 62,
                          -(i64{1} << 62), INT64_MAX, INT64_MIN};
    for (const i64 v : values)
        EXPECT_EQ(telemetry::unzigzag(telemetry::zigzag(v)), v);
    EXPECT_EQ(telemetry::zigzag(0), 0u);
    EXPECT_EQ(telemetry::zigzag(-1), 1u);
    EXPECT_EQ(telemetry::zigzag(1), 2u);
}

TEST(TelemetryCodec, LzRoundTrips)
{
    std::mt19937_64 rng(0xc0dec);
    std::vector<Bytes> inputs;
    inputs.push_back({});                    // empty
    inputs.push_back(Bytes(10000, 0x42));    // pure RLE
    Bytes random_bytes(10000);
    for (auto &b : random_bytes)
        b = static_cast<u8>(rng());          // incompressible
    inputs.push_back(random_bytes);
    Bytes structured;                        // repeating record shape
    for (u32 i = 0; i < 2000; ++i) {
        structured.push_back(static_cast<u8>(i % 7));
        structured.insert(structured.end(),
                          {'s', 'o', 'l', 'a', 'r', ','});
    }
    inputs.push_back(structured);
    Bytes short_input = {1, 2, 3};           // below min match
    inputs.push_back(short_input);

    for (const auto &input : inputs) {
        const Bytes packed = telemetry::lzCompress(input);
        Bytes restored;
        ASSERT_TRUE(
            telemetry::lzDecompress(packed, input.size(), &restored));
        EXPECT_EQ(restored, input);
    }

    // Repetitive input must actually compress.
    EXPECT_LT(telemetry::lzCompress(Bytes(10000, 0x42)).size(), 200u);
}

TEST(TelemetryCodec, LzRejectsMalformedStreams)
{
    Bytes input(4096);
    for (u64 i = 0; i < input.size(); ++i)
        input[i] = static_cast<u8>(i % 31);
    const Bytes packed = telemetry::lzCompress(input);
    Bytes out;

    // Wrong raw size (both directions).
    EXPECT_FALSE(
        telemetry::lzDecompress(packed, input.size() - 1, &out));
    EXPECT_FALSE(
        telemetry::lzDecompress(packed, input.size() + 1, &out));

    // Truncations must never crash and never yield wrong bytes. (One
    // prefix CAN succeed: cutting exactly before the redundant final
    // empty-literal token still decodes to the full input. Container-
    // level truncation is caught by the chunk checksums regardless —
    // see Sonicz.EveryTruncationIsRejected.)
    for (u64 cut = 0; cut < packed.size(); ++cut) {
        const Bytes prefix(packed.begin(),
                           packed.begin() + static_cast<i64>(cut));
        if (telemetry::lzDecompress(prefix, input.size(), &out))
            EXPECT_EQ(out, input) << "prefix " << cut;
    }

    // A zero offset is never legal.
    const Bytes zero_offset = {0x14, 'a', 0x00, 0x00};
    EXPECT_FALSE(telemetry::lzDecompress(zero_offset, 100, &out));
    // An offset pointing before the start of the output is not either.
    const Bytes far_offset = {0x14, 'a', 0x09, 0x00};
    EXPECT_FALSE(telemetry::lzDecompress(far_offset, 100, &out));
}

// --- Lossless round trips -------------------------------------------

TEST(Sonicz, SweepRoundTripIsByteIdentical)
{
    std::mt19937_64 rng(0x51ee9);
    std::vector<app::SweepRecord> records;
    for (u32 i = 0; i < 300; ++i)
        records.push_back(randomSweepRecord(rng, i));

    const std::string packed = packSweep(records);
    telemetry::CatOptions options;
    EXPECT_EQ(catToString(packed, options),
              directSweepOutput(records, /*json=*/false));
    options.format = telemetry::CatOptions::Format::Json;
    EXPECT_EQ(catToString(packed, options),
              directSweepOutput(records, /*json=*/true));
}

TEST(Sonicz, FleetRoundTripIsByteIdenticalAcrossBlocks)
{
    std::mt19937_64 rng(0xf1ee7);
    std::vector<fleet::DeviceTelemetry> rows;
    // > kRowsPerBlock so the round trip crosses a block boundary.
    const u32 count = telemetry::SoniczWriter::kRowsPerBlock + 1000;
    for (u32 i = 0; i < count; ++i)
        rows.push_back(randomFleetTelemetry(rng, i));

    const std::string packed = packFleet(rows);
    telemetry::CatOptions options;
    EXPECT_EQ(catToString(packed, options),
              directFleetOutput(rows, /*json=*/false));
    options.format = telemetry::CatOptions::Format::Json;
    EXPECT_EQ(catToString(packed, options),
              directFleetOutput(rows, /*json=*/true));

    std::istringstream in(packed);
    telemetry::SoniczInfo info;
    std::string error;
    ASSERT_TRUE(
        telemetry::readSonicz(in, nullptr, nullptr, &info, &error))
        << error;
    EXPECT_EQ(info.kind, telemetry::SchemaKind::Fleet);
    EXPECT_EQ(info.rows, count);
    EXPECT_EQ(info.blocks, 2u);
}

TEST(Sonicz, ParallelBlockEncodingIsByteIdenticalToSerial)
{
    // The background encoder compresses blocks out of order but the
    // writer emits them in sequence, so the worker count must never
    // show in the bytes — the same promise the fleet's traced and
    // sweep sinks rely on when they default to the run's thread count.
    std::mt19937_64 rng(0xecc0de);
    std::vector<fleet::DeviceTelemetry> rows;
    const u32 count = telemetry::SoniczWriter::kRowsPerBlock * 3 + 17;
    for (u32 i = 0; i < count; ++i)
        rows.push_back(randomFleetTelemetry(rng, i));

    const std::string serial = packFleet(rows, 0);
    for (const u32 threads : {1u, 2u, 4u}) {
        EXPECT_EQ(packFleet(rows, threads), serial)
            << threads << " encoder threads";
    }
}

TEST(Sonicz, FieldsSurviveBitExactly)
{
    std::mt19937_64 rng(0xb17);
    std::vector<app::SweepRecord> records;
    for (u32 i = 0; i < 50; ++i)
        records.push_back(randomSweepRecord(rng, i));
    const std::string packed = packSweep(records);

    std::vector<app::SweepRecord> restored;
    std::istringstream in(packed);
    std::string error;
    ASSERT_TRUE(telemetry::readSonicz(
        in,
        [&](const app::SweepRecord &r) { restored.push_back(r); },
        nullptr, nullptr, &error))
        << error;
    ASSERT_EQ(restored.size(), records.size());
    for (u64 i = 0; i < records.size(); ++i) {
        const auto &a = records[i];
        const auto &b = restored[i];
        EXPECT_EQ(a.planIndex, b.planIndex);
        EXPECT_EQ(a.spec.net, b.spec.net);
        EXPECT_EQ(a.spec.impl, b.spec.impl);
        EXPECT_EQ(a.spec.power, b.spec.power);
        EXPECT_EQ(a.spec.profile, b.spec.profile);
        EXPECT_EQ(a.spec.environment.env, b.spec.environment.env);
        // f64 equality must be on the bit pattern: -0.0 == 0.0 would
        // wave a lossy encoder through.
        EXPECT_EQ(
            std::bit_cast<u64>(a.spec.environment.capacitanceFarads),
            std::bit_cast<u64>(b.spec.environment.capacitanceFarads));
        EXPECT_EQ(a.spec.seed, b.spec.seed);
        EXPECT_EQ(a.spec.failureSchedule, b.spec.failureSchedule);
        EXPECT_EQ(a.spec.captureNvmDigests, b.spec.captureNvmDigests);
        EXPECT_EQ(a.result.completed, b.result.completed);
        EXPECT_EQ(a.result.nonTerminating, b.result.nonTerminating);
        EXPECT_EQ(std::bit_cast<u64>(a.result.liveSeconds),
                  std::bit_cast<u64>(b.result.liveSeconds));
        EXPECT_EQ(std::bit_cast<u64>(a.result.energyJ),
                  std::bit_cast<u64>(b.result.energyJ));
        EXPECT_EQ(a.result.rebootDigests, b.result.rebootDigests);
        EXPECT_EQ(a.result.energyByOp, b.result.energyByOp);
        EXPECT_EQ(a.result.logits, b.result.logits);
        ASSERT_EQ(a.result.layers.size(), b.result.layers.size());
        for (u64 l = 0; l < a.result.layers.size(); ++l) {
            EXPECT_EQ(a.result.layers[l].name,
                      b.result.layers[l].name);
            EXPECT_EQ(
                std::bit_cast<u64>(a.result.layers[l].kernelSeconds),
                std::bit_cast<u64>(b.result.layers[l].kernelSeconds));
        }
    }
}

// --- Subset flags ---------------------------------------------------

TEST(SonicCat, SubsetFlagsMatchPostHocFiltering)
{
    std::mt19937_64 rng(0xf117e4);
    std::vector<fleet::DeviceTelemetry> rows;
    for (u32 i = 0; i < 400; ++i)
        rows.push_back(randomFleetTelemetry(rng, i));
    const std::string packed = packFleet(rows);

    const auto expect_filtered =
        [&](const telemetry::CatOptions &options,
            const std::function<bool(const fleet::DeviceTelemetry &)>
                &keep) {
            std::vector<fleet::DeviceTelemetry> kept;
            for (const auto &row : rows)
                if (keep(row))
                    kept.push_back(row);
            EXPECT_EQ(
                catToString(packed, options),
                directFleetOutput(
                    kept,
                    options.format
                        == telemetry::CatOptions::Format::Json));
        };

    telemetry::CatOptions by_impl;
    by_impl.impl = "SONIC";
    expect_filtered(by_impl, [](const fleet::DeviceTelemetry &t) {
        return kernels::implName(t.assignment.impl) == "SONIC";
    });

    // --env matches the bare environment name even when the row's
    // label carries a capacitor suffix.
    telemetry::CatOptions by_env;
    by_env.env = "MNIST"; // corpus reuses awkward names as env names
    expect_filtered(by_env, [](const fleet::DeviceTelemetry &t) {
        return t.assignment.environment.env == "MNIST";
    });

    telemetry::CatOptions by_status;
    by_status.status = "dnf";
    by_status.format = telemetry::CatOptions::Format::Json;
    expect_filtered(by_status, [](const fleet::DeviceTelemetry &t) {
        return t.diedNonTerminating;
    });

    telemetry::CatOptions by_range;
    by_range.hasRange = true;
    by_range.rangeLo = 100;
    by_range.rangeHi = 199;
    expect_filtered(by_range, [](const fleet::DeviceTelemetry &t) {
        return t.assignment.deviceIndex >= 100
            && t.assignment.deviceIndex <= 199;
    });

    // Conjunction of filters.
    telemetry::CatOptions both;
    both.impl = "SONIC";
    both.status = "ok";
    both.hasRange = true;
    both.rangeLo = 0;
    both.rangeHi = 250;
    expect_filtered(both, [](const fleet::DeviceTelemetry &t) {
        return kernels::implName(t.assignment.impl) == "SONIC"
            && !t.diedNonTerminating && !t.failedIncomplete
            && t.assignment.deviceIndex <= 250;
    });

    // A filter that matches nothing still yields the schema-correct
    // empty artifact.
    telemetry::CatOptions none;
    none.net = "no-such-net";
    expect_filtered(none,
                    [](const fleet::DeviceTelemetry &) { return false; });
}

TEST(SonicCat, ParseIndexRange)
{
    u64 lo = 99, hi = 99;
    EXPECT_TRUE(telemetry::parseIndexRange("3..7", &lo, &hi));
    EXPECT_EQ(lo, 3u);
    EXPECT_EQ(hi, 7u);
    EXPECT_TRUE(telemetry::parseIndexRange("12", &lo, &hi));
    EXPECT_EQ(lo, 12u);
    EXPECT_EQ(hi, 12u);
    EXPECT_FALSE(telemetry::parseIndexRange("7..3", &lo, &hi));
    EXPECT_FALSE(telemetry::parseIndexRange("", &lo, &hi));
    EXPECT_FALSE(telemetry::parseIndexRange("a..b", &lo, &hi));
    EXPECT_FALSE(telemetry::parseIndexRange("3..", &lo, &hi));
    EXPECT_FALSE(
        telemetry::parseIndexRange("99999999999999999999", &lo, &hi));
}

TEST(SonicCat, PipelineFilterOnSweepFileIsAnError)
{
    std::mt19937_64 rng(0x9e);
    std::vector<app::SweepRecord> records;
    for (u32 i = 0; i < 5; ++i)
        records.push_back(randomSweepRecord(rng, i));
    const std::string packed = packSweep(records);

    telemetry::CatOptions options;
    options.pipeline = "wildlife";
    std::istringstream in(packed);
    std::ostringstream out;
    std::string error;
    EXPECT_FALSE(telemetry::catSonicz(in, out, options, &error));
    EXPECT_NE(error.find("sweep file"), std::string::npos);
}

// --- Corruption and truncation --------------------------------------

TEST(Sonicz, EveryTruncationIsRejected)
{
    std::mt19937_64 rng(0x7e4c);
    std::vector<fleet::DeviceTelemetry> rows;
    for (u32 i = 0; i < 6; ++i)
        rows.push_back(randomFleetTelemetry(rng, i));
    const std::string packed = packFleet(rows);

    for (u64 cut = 0; cut < packed.size(); ++cut) {
        std::istringstream in(packed.substr(0, cut));
        std::string error;
        EXPECT_FALSE(
            telemetry::readSonicz(in, nullptr, nullptr, nullptr,
                                  &error))
            << "prefix of " << cut << " bytes was accepted";
        EXPECT_FALSE(error.empty());
    }
}

TEST(Sonicz, EverySingleByteCorruptionIsRejected)
{
    // FNV-1a chunk checksums, the schema header check, the chained
    // footer digest, and strict row/column accounting must between
    // them catch a flip of ANY byte in the file. (XOR-then-multiply
    // steps are bijections of the hash state, so a byte change with
    // unchanged length always changes a chunk checksum; structural
    // bytes are caught by the header/footer validation instead.)
    std::mt19937_64 rng(0xbadb17);
    std::vector<fleet::DeviceTelemetry> rows;
    for (u32 i = 0; i < 4; ++i)
        rows.push_back(randomFleetTelemetry(rng, i));
    const std::string packed = packFleet(rows);

    for (u64 i = 0; i < packed.size(); ++i) {
        std::string mutated = packed;
        mutated[i] = static_cast<char>(mutated[i] ^ 0x5a);
        std::istringstream in(mutated);
        std::string error;
        EXPECT_FALSE(
            telemetry::readSonicz(in, nullptr, nullptr, nullptr,
                                  &error))
            << "flip at byte " << i << " was accepted";
    }

    // Trailing garbage after the footer is also corruption: appended
    // bytes shift the index-offset trailer off its position.
    std::istringstream in(packed + "x");
    std::string error;
    EXPECT_FALSE(
        telemetry::readSonicz(in, nullptr, nullptr, nullptr, &error));
    EXPECT_FALSE(error.empty());
}

// --- Schema evolution and the block index ---------------------------

#ifdef SONIC_GOLDEN_DIR
/** The checked-in version-1 file (no block index, written before the
 * format grew one) must keep reading byte-for-byte — the oldest
 * telemetry a deployment archived is the telemetry the planner will
 * one day be asked to ingest. */
TEST(Sonicz, ReadsVersion1GoldenFixtureByteForByte)
{
    std::ifstream sonicz(SONIC_GOLDEN_DIR "/fleet_v1.sonicz",
                         std::ios::binary);
    ASSERT_TRUE(sonicz) << "missing golden fixture";
    std::ostringstream packed_os;
    packed_os << sonicz.rdbuf();
    const std::string packed = packed_os.str();

    std::ifstream csv(SONIC_GOLDEN_DIR "/fleet_v1.csv",
                      std::ios::binary);
    ASSERT_TRUE(csv) << "missing golden CSV";
    std::ostringstream golden_os;
    golden_os << csv.rdbuf();
    const std::string golden = golden_os.str();

    telemetry::CatOptions options;
    EXPECT_EQ(catToString(packed, options), golden);

    std::istringstream in(packed);
    telemetry::SoniczInfo info;
    std::string error;
    ASSERT_TRUE(
        telemetry::readSonicz(in, nullptr, nullptr, &info, &error))
        << error;
    EXPECT_EQ(info.version, 1u);
    EXPECT_FALSE(info.hasIndex);
    EXPECT_EQ(info.blocksSkipped, 0u);

    // A device range on a version-1 file falls back to the full scan
    // but still filters: compare against filtering the golden CSV by
    // its leading device-index field.
    telemetry::CatOptions ranged;
    ranged.hasRange = true;
    ranged.rangeLo = 10;
    ranged.rangeHi = 25;
    std::string expected;
    std::istringstream lines(golden);
    std::string line;
    bool header = true;
    while (std::getline(lines, line)) {
        if (header) {
            expected += line + "\n";
            header = false;
            continue;
        }
        const u64 device = std::stoull(line);
        if (device >= ranged.rangeLo && device <= ranged.rangeHi)
            expected += line + "\n";
    }
    EXPECT_EQ(catToString(packed, ranged), expected);
}
#endif

TEST(Sonicz, UnknownTrailingColumnsAreTolerated)
{
    // Write the file a FUTURE build with a wider fleet schema would
    // write; today's reader must deliver the columns it knows and skip
    // the rest (resolution is by name, not position).
    std::mt19937_64 rng(0xfadd);
    std::vector<fleet::DeviceTelemetry> rows;
    for (u32 i = 0; i < 300; ++i)
        rows.push_back(randomFleetTelemetry(rng, i));

    const std::vector<telemetry::ColumnSpec> extra = {
        {"future_metric", telemetry::ColType::F64},
        {"future_tag", telemetry::ColType::Str},
    };
    std::ostringstream os;
    telemetry::SoniczWriter writer(os, telemetry::SchemaKind::Fleet,
                                   extra);
    const u32 base = telemetry::fleetcol::kColumnCount;
    for (const auto &row : rows) {
        telemetry::appendFleetCells(writer, row);
        writer.putF64(base, randomF64(rng));
        writer.putStr(base + 1, "vNext");
        writer.endRow();
    }
    writer.finish();
    const std::string packed = os.str();

    telemetry::CatOptions options;
    EXPECT_EQ(catToString(packed, options),
              directFleetOutput(rows, /*json=*/false));

    // The skipped columns stay under the integrity umbrella: flipping
    // any byte of the file — unknown-column payloads included — is
    // still rejected.
    std::ostringstream small_os;
    telemetry::SoniczWriter small(small_os,
                                  telemetry::SchemaKind::Fleet, extra);
    for (u32 i = 0; i < 4; ++i) {
        telemetry::appendFleetCells(small, rows[i]);
        small.putF64(base, randomF64(rng));
        small.putStr(base + 1, "vNext");
        small.endRow();
    }
    small.finish();
    const std::string small_packed = small_os.str();
    for (u64 i = 0; i < small_packed.size(); ++i) {
        std::string mutated = small_packed;
        mutated[i] = static_cast<char>(mutated[i] ^ 0x5a);
        std::istringstream in(mutated);
        std::string error;
        EXPECT_FALSE(telemetry::readSonicz(in, nullptr, nullptr,
                                           nullptr, &error))
            << "flip at byte " << i << " was accepted";
    }
}

TEST(Sonicz, IndexPruningMatchesFullScanAndSkipsBlocks)
{
    std::mt19937_64 rng(0x1d5);
    std::vector<fleet::DeviceTelemetry> rows;
    const u32 per_block = telemetry::SoniczWriter::kRowsPerBlock;
    const u32 count = per_block * 2 + 500; // three blocks
    for (u32 i = 0; i < count; ++i)
        rows.push_back(randomFleetTelemetry(rng, i));
    const std::string packed = packFleet(rows);

    // A range inside the last block must skip the first two blocks
    // undecoded yet deliver exactly the rows a full scan filters to.
    telemetry::CatOptions ranged;
    ranged.hasRange = true;
    ranged.rangeLo = per_block * 2 + 100;
    ranged.rangeHi = per_block * 2 + 200;
    std::vector<fleet::DeviceTelemetry> kept;
    for (const auto &row : rows)
        if (row.assignment.deviceIndex >= ranged.rangeLo
            && row.assignment.deviceIndex <= ranged.rangeHi)
            kept.push_back(row);
    EXPECT_EQ(catToString(packed, ranged),
              directFleetOutput(kept, /*json=*/false));

    std::istringstream in(packed);
    telemetry::SoniczInfo info;
    std::string error;
    const telemetry::RowRange range{ranged.rangeLo, ranged.rangeHi};
    ASSERT_TRUE(telemetry::readSonicz(in, nullptr, nullptr, &info,
                                      &error, &range))
        << error;
    EXPECT_TRUE(info.hasIndex);
    EXPECT_EQ(info.blocksSkipped, 2u);
    EXPECT_EQ(info.rows, count); // skipped rows still counted

    // Without a range every block is decoded (and checksum-verified).
    std::istringstream full(packed);
    ASSERT_TRUE(telemetry::readSonicz(full, nullptr, nullptr, &info,
                                      &error))
        << error;
    EXPECT_EQ(info.blocksSkipped, 0u);
    EXPECT_EQ(info.blocks, 3u);
}

// --- Streaming aggregation ------------------------------------------

void
expectGroupStatsEqual(const fleet::GroupStats &a,
                      const fleet::GroupStats &b)
{
    EXPECT_EQ(a.devices, b.devices);
    EXPECT_EQ(a.dnfDevices, b.dnfDevices);
    EXPECT_EQ(a.failedDevices, b.failedDevices);
    EXPECT_EQ(a.inferences, b.inferences);
    EXPECT_EQ(a.reboots, b.reboots);
    // Bit-exact: the fold visits rows in the same device order the
    // summary reduction did, so the f64 sums must be identical.
    EXPECT_EQ(std::bit_cast<u64>(a.liveSeconds),
              std::bit_cast<u64>(b.liveSeconds));
    EXPECT_EQ(std::bit_cast<u64>(a.deadSeconds),
              std::bit_cast<u64>(b.deadSeconds));
    EXPECT_EQ(std::bit_cast<u64>(a.energyJ),
              std::bit_cast<u64>(b.energyJ));
    EXPECT_EQ(std::bit_cast<u64>(a.harvestedJ),
              std::bit_cast<u64>(b.harvestedJ));
    EXPECT_EQ(a.resultsDelivered, b.resultsDelivered);
    EXPECT_EQ(a.txGaveUpDevices, b.txGaveUpDevices);
    EXPECT_EQ(a.txAttempts, b.txAttempts);
    EXPECT_EQ(a.txRetries, b.txRetries);
    EXPECT_EQ(std::bit_cast<u64>(a.radioEnergyJ),
              std::bit_cast<u64>(b.radioEnergyJ));
    EXPECT_EQ(std::bit_cast<u64>(a.senseEnergyJ),
              std::bit_cast<u64>(b.senseEnergyJ));
    EXPECT_EQ(std::bit_cast<u64>(a.txBackoffSeconds),
              std::bit_cast<u64>(b.txBackoffSeconds));
}

TEST(TelemetryAggregate, MatchesRunFleetGroupStats)
{
    fleet::FleetPlan plan;
    plan.devices = 30;
    plan.nets = {"MNIST", "HAR"};
    plan.impls = {kernels::Impl::Sonic, kernels::Impl::Tails};
    plan.environments = {{"solar", 1e-3}, {"rf-paper", 100e-6}};
    plan.pipelines = {"wildlife", "infer-only"};
    plan.maxInferencesPerDevice = 1;

    std::ostringstream os;
    telemetry::SoniczFleetSink sink(os);
    const auto summary = fleet::runFleet(plan, {}, {&sink});

    std::istringstream in(os.str());
    fleet::FleetSummary folded;
    std::string error;
    ASSERT_TRUE(telemetry::aggregate(in, &folded, &error)) << error;

    EXPECT_EQ(folded.devices, summary.devices);
    expectGroupStatsEqual(folded.total, summary.total);
    const auto expect_groups =
        [](const std::map<std::string, fleet::GroupStats> &got,
           const std::map<std::string, fleet::GroupStats> &want) {
            ASSERT_EQ(got.size(), want.size());
            for (const auto &[name, stats] : want) {
                const auto it = got.find(name);
                ASSERT_NE(it, got.end()) << "missing group " << name;
                expectGroupStatsEqual(it->second, stats);
            }
        };
    expect_groups(folded.byEnvironment, summary.byEnvironment);
    expect_groups(folded.byImpl, summary.byImpl);
    expect_groups(folded.byNet, summary.byNet);
    expect_groups(folded.byPipeline, summary.byPipeline);

    // Telemetry does not carry the horizon, the seed, or per-round
    // latencies; the fold leaves them zero rather than guessing.
    EXPECT_EQ(folded.horizonSeconds, 0.0);
    EXPECT_EQ(folded.baseSeed, 0u);
    EXPECT_EQ(folded.latencyP50Seconds, 0.0);

    // soniczSummary is the same fold behind the --summary flag.
    std::istringstream again(os.str());
    std::ostringstream text;
    telemetry::CatOptions options;
    ASSERT_TRUE(
        telemetry::soniczSummary(again, text, options, &error))
        << error;
    EXPECT_EQ(text.str(), folded.toJson());
}

TEST(SonicCat, SummaryRejectsStringFiltersAndSweepFiles)
{
    std::mt19937_64 rng(0x5f);
    const std::string fleet_packed =
        packFleet({randomFleetTelemetry(rng, 0)});

    telemetry::CatOptions with_filter;
    with_filter.impl = "SONIC";
    std::istringstream in(fleet_packed);
    std::ostringstream out;
    std::string error;
    EXPECT_FALSE(
        telemetry::soniczSummary(in, out, with_filter, &error));
    EXPECT_FALSE(error.empty());

    const std::string sweep_packed =
        packSweep({randomSweepRecord(rng, 0)});
    std::istringstream sweep_in(sweep_packed);
    error.clear();
    EXPECT_FALSE(
        telemetry::soniczSummary(sweep_in, out, {}, &error));
    EXPECT_FALSE(error.empty());
}

TEST(Sonicz, RejectsForeignMagicAndVersions)
{
    std::string error;
    std::istringstream not_sonicz("planIndex,net,impl\n0,MNIST,SONIC");
    EXPECT_FALSE(telemetry::readSonicz(not_sonicz, nullptr, nullptr,
                                       nullptr, &error));
    EXPECT_NE(error.find("bad magic"), std::string::npos);

    std::mt19937_64 rng(0x11);
    const std::string packed =
        packFleet({randomFleetTelemetry(rng, 0)});
    std::string future = packed;
    future[4] = 99; // version byte
    std::istringstream in(future);
    EXPECT_FALSE(
        telemetry::readSonicz(in, nullptr, nullptr, nullptr, &error));
    EXPECT_NE(error.find("version"), std::string::npos);
}

} // namespace
} // namespace sonic
