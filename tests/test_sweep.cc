/**
 * @file
 * Tests for the declarative sweep engine: plan expansion (shape,
 * ordering, seeding), engine execution (parallel bit-identical to
 * serial — the determinism contract), and the streaming sinks.
 */

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "app/engine.hh"

namespace sonic::app
{
namespace
{

void
expectResultsEqual(const ExperimentResult &a, const ExperimentResult &b,
                   const std::string &what)
{
    EXPECT_EQ(a.completed, b.completed) << what;
    EXPECT_EQ(a.nonTerminating, b.nonTerminating) << what;
    EXPECT_EQ(a.reboots, b.reboots) << what;
    EXPECT_EQ(a.tasksExecuted, b.tasksExecuted) << what;
    // Bit-identical, not approximately equal: the same spec performs
    // the same charged operations in the same order on its own device
    // regardless of which worker thread runs it.
    EXPECT_EQ(a.liveSeconds, b.liveSeconds) << what;
    EXPECT_EQ(a.deadSeconds, b.deadSeconds) << what;
    EXPECT_EQ(a.totalSeconds, b.totalSeconds) << what;
    EXPECT_EQ(a.energyJ, b.energyJ) << what;
    EXPECT_EQ(a.harvestedJ, b.harvestedJ) << what;
    EXPECT_EQ(a.logits, b.logits) << what;
    EXPECT_EQ(a.predictedClass, b.predictedClass) << what;
    EXPECT_EQ(a.tailsTileWords, b.tailsTileWords) << what;
    ASSERT_EQ(a.layers.size(), b.layers.size()) << what;
    for (u64 i = 0; i < a.layers.size(); ++i) {
        EXPECT_EQ(a.layers[i].name, b.layers[i].name) << what;
        EXPECT_EQ(a.layers[i].kernelSeconds, b.layers[i].kernelSeconds)
            << what;
        EXPECT_EQ(a.layers[i].controlSeconds,
                  b.layers[i].controlSeconds)
            << what;
        EXPECT_EQ(a.layers[i].energyJ, b.layers[i].energyJ) << what;
    }
    EXPECT_EQ(a.energyByOp, b.energyByOp) << what;
}

TEST(SweepPlan, DefaultsToSingleDefaultSpec)
{
    SweepPlan plan;
    EXPECT_EQ(plan.size(), 1u);
    const auto specs = plan.expand();
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_EQ(specs[0].net, "MNIST");
    EXPECT_EQ(specs[0].impl, kernels::Impl::Sonic);
    EXPECT_EQ(specs[0].power, PowerKind::Continuous);
    EXPECT_EQ(specs[0].profile, ProfileVariant::Standard);
    EXPECT_EQ(specs[0].sampleIndex, 0u);
}

TEST(SweepPlan, CrossProductSizeAndOrder)
{
    SweepPlan plan;
    plan.nets({"HAR", "OkG"})
        .impls({kernels::Impl::Base, kernels::Impl::Sonic})
        .power({PowerKind::Continuous, PowerKind::Cap1mF})
        .samples(2);
    EXPECT_EQ(plan.size(), 16u);
    const auto specs = plan.expand();
    ASSERT_EQ(specs.size(), 16u);

    // Nets outermost ... samples innermost.
    EXPECT_EQ(specs[0].net, "HAR");
    EXPECT_EQ(specs[0].impl, kernels::Impl::Base);
    EXPECT_EQ(specs[0].power, PowerKind::Continuous);
    EXPECT_EQ(specs[0].sampleIndex, 0u);
    EXPECT_EQ(specs[1].sampleIndex, 1u);
    EXPECT_EQ(specs[2].power, PowerKind::Cap1mF);
    EXPECT_EQ(specs[4].impl, kernels::Impl::Sonic);
    EXPECT_EQ(specs[8].net, "OkG");
    EXPECT_EQ(specs[15].net, "OkG");
    EXPECT_EQ(specs[15].impl, kernels::Impl::Sonic);
    EXPECT_EQ(specs[15].power, PowerKind::Cap1mF);
    EXPECT_EQ(specs[15].sampleIndex, 1u);
}

TEST(SweepPlan, AllAxisHelpersCoverThePaperGrid)
{
    SweepPlan plan;
    plan.allNets().allImpls().allPower().profiles(
        {ProfileVariant::Standard, ProfileVariant::NoLea,
         ProfileVariant::NoDma});
    EXPECT_EQ(plan.size(), 3u * 6u * 4u * 3u);
}

TEST(SweepPlan, ImplNamesResolveThroughRegistry)
{
    SweepPlan plan;
    plan.implNames({"SONIC", "Tile-8", "TAILS"});
    const auto &axis = plan.implAxis();
    ASSERT_EQ(axis.size(), 3u);
    EXPECT_EQ(axis[0], kernels::Impl::Sonic);
    EXPECT_EQ(axis[1], kernels::Impl::Tile8);
    EXPECT_EQ(axis[2], kernels::Impl::Tails);
}

TEST(SweepPlan, SeedsAreDeterministicAndShapeIndependent)
{
    SweepPlan small;
    small.nets({"HAR"})
        .impls({kernels::Impl::Sonic});
    SweepPlan large;
    large.allNets()
        .impls({kernels::Impl::Base, kernels::Impl::Sonic})
        .allPower()
        .samples(2);

    const auto small_specs = small.expand();
    const auto large_specs = large.expand();
    // The (Har, Sonic, Continuous, Standard, 0) point exists in both
    // plans and must carry the same seed: seeding is a function of
    // coordinates, not of plan shape or expansion index.
    const RunSpec &a = small_specs[0];
    const RunSpec *b = nullptr;
    for (const auto &spec : large_specs) {
        if (spec.net == a.net && spec.impl == a.impl
            && spec.power == a.power && spec.profile == a.profile
            && spec.sampleIndex == a.sampleIndex)
            b = &spec;
    }
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a.seed, b->seed);

    // Distinct coordinates get distinct seeds.
    std::set<u64> seeds;
    for (const auto &spec : large_specs)
        seeds.insert(spec.seed);
    EXPECT_EQ(seeds.size(), large_specs.size());

    // A different base seed reseeds everything.
    SweepPlan reseeded;
    reseeded.nets({"HAR"})
        .impls({kernels::Impl::Sonic})
        .baseSeed(1234);
    EXPECT_NE(reseeded.expand()[0].seed, a.seed);
}

TEST(SweepPlan, SeedsIndependentOfAxisInsertionOrder)
{
    // The seed is a pure function of (baseSeed, coordinates): the
    // order axis setters were called in — and therefore any refactor
    // of plan-building code — can never reseed a grid point.
    SweepPlan ab;
    ab.nets({"HAR", "OkG"})
        .impls({kernels::Impl::Base, kernels::Impl::Sonic})
        .power({PowerKind::Continuous, PowerKind::Cap1mF})
        .samples(2)
        .baseSeed(77);
    SweepPlan ba;
    ba.baseSeed(77)
        .samples(2)
        .power({PowerKind::Continuous, PowerKind::Cap1mF})
        .impls({kernels::Impl::Base, kernels::Impl::Sonic})
        .nets({"HAR", "OkG"});

    const auto a = ab.expand();
    const auto b = ba.expand();
    ASSERT_EQ(a.size(), b.size());
    for (u64 i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].net, b[i].net);
        EXPECT_EQ(a[i].impl, b[i].impl);
        EXPECT_EQ(a[i].seed, b[i].seed) << i;
    }
}

TEST(SweepPlan, SeedsBitStableAcrossThreadCounts)
{
    // Engine workers pull specs from a shared counter; the recorded
    // seed stream must be the plan's expansion regardless of how many
    // threads raced over it.
    SweepPlan plan;
    plan.nets({"HAR"})
        .impls({kernels::Impl::Sonic, kernels::Impl::Base})
        .samples(2)
        .baseSeed(0xabcdef);
    const auto expanded = plan.expand();

    for (const u32 threads : {1u, 2u, 8u}) {
        Engine engine(EngineOptions{threads});
        const auto records = engine.run(plan);
        ASSERT_EQ(records.size(), expanded.size()) << threads;
        for (u64 i = 0; i < records.size(); ++i)
            EXPECT_EQ(records[i].spec.seed, expanded[i].seed)
                << threads << "/" << i;
    }
}

TEST(SweepPlan, ScheduleAxisExpandsInnermostAndReseeds)
{
    SweepPlan plan;
    plan.impls({kernels::Impl::Sonic})
        .failureSchedules({{}, {10, 20}, {10, 21}});
    EXPECT_EQ(plan.size(), 3u);
    const auto specs = plan.expand();
    ASSERT_EQ(specs.size(), 3u);
    EXPECT_TRUE(specs[0].failureSchedule.empty());
    EXPECT_EQ(specs[1].failureSchedule, (std::vector<u64>{10, 20}));
    EXPECT_EQ(specs[2].failureSchedule, (std::vector<u64>{10, 21}));

    // The empty schedule keeps the pre-axis seed; distinct schedules
    // get distinct seeds.
    SweepPlan plain;
    plain.impls({kernels::Impl::Sonic});
    EXPECT_EQ(specs[0].seed, plain.expand()[0].seed);
    std::set<u64> seeds{specs[0].seed, specs[1].seed, specs[2].seed};
    EXPECT_EQ(seeds.size(), 3u);
}

TEST(Engine, ScheduleRunsStreamDigestsThroughSinks)
{
    SweepPlan plan;
    plan.nets({"HAR"})
        .impls({kernels::Impl::Sonic})
        .failureSchedules({{1000, 2000}})
        .captureNvmDigests(true);
    std::ostringstream json_out;
    JsonSink json(json_out);
    Engine engine(EngineOptions{1});
    const auto records = engine.run(plan, {&json});
    ASSERT_EQ(records.size(), 1u);
    const auto &r = records[0].result;
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.scheduleFired, 2u);
    EXPECT_EQ(r.reboots, 2u);
    EXPECT_EQ(r.rebootDigests.size(), 2u);
    EXPECT_NE(r.finalNvmDigest, 0u);

    const std::string text = json_out.str();
    EXPECT_NE(text.find("\"failureSchedule\": [1000, 2000]"),
              std::string::npos);
    EXPECT_NE(text.find("\"scheduleFired\": 2"), std::string::npos);
    EXPECT_NE(text.find("\"rebootDigests\": ["), std::string::npos);
}

TEST(Engine, ParallelSweepBitIdenticalToSerial)
{
    SweepPlan plan;
    plan.nets({"HAR"})
        .impls({kernels::Impl::Sonic, kernels::Impl::Tails})
        .power({PowerKind::Continuous, PowerKind::Cap100uF});

    Engine serial(EngineOptions{1});
    Engine parallel(EngineOptions{4});
    EXPECT_EQ(serial.threadCount(), 1u);
    EXPECT_EQ(parallel.threadCount(), 4u);

    const auto serial_records = serial.run(plan);
    const auto parallel_records = parallel.run(plan);
    ASSERT_EQ(serial_records.size(), plan.size());
    ASSERT_EQ(parallel_records.size(), plan.size());

    for (u64 i = 0; i < serial_records.size(); ++i) {
        const auto &s = serial_records[i];
        const auto &p = parallel_records[i];
        // Records arrive in plan order on both paths.
        EXPECT_EQ(s.planIndex, i);
        EXPECT_EQ(p.planIndex, i);
        EXPECT_EQ(s.spec.net, p.spec.net);
        EXPECT_EQ(s.spec.impl, p.spec.impl);
        EXPECT_EQ(s.spec.power, p.spec.power);
        EXPECT_EQ(s.spec.seed, p.spec.seed);
        expectResultsEqual(
            s.result, p.result,
            "record " + std::to_string(i) + " ("
                + std::string(kernels::implName(s.spec.impl)) + "/"
                + powerName(s.spec.power) + ")");
        EXPECT_TRUE(s.result.completed);
    }
}

TEST(Engine, SinksStreamInPlanOrder)
{
    SweepPlan plan;
    plan.nets({"HAR"})
        .impls({kernels::Impl::Base, kernels::Impl::Sonic});

    std::ostringstream csv_out, json_out;
    CsvSink csv(csv_out);
    JsonSink json(json_out);
    MemorySink memory;

    Engine engine(EngineOptions{2});
    const auto records = engine.run(plan, {&csv, &json, &memory});
    ASSERT_EQ(records.size(), 2u);
    ASSERT_EQ(memory.records().size(), 2u);
    EXPECT_EQ(memory.records()[0].spec.impl, kernels::Impl::Base);
    EXPECT_EQ(memory.records()[1].spec.impl, kernels::Impl::Sonic);

    // CSV: header + one line per record, in plan order.
    const std::string csv_text = csv_out.str();
    std::istringstream csv_lines(csv_text);
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(csv_lines, line))
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[0].rfind("planIndex,net,impl,power", 0), 0u);
    EXPECT_NE(lines[1].find("HAR,Base,Continuous"),
              std::string::npos);
    EXPECT_NE(lines[2].find("HAR,SONIC,Continuous"),
              std::string::npos);

    // JSON: an array with one object per record and the trajectory
    // payload (layers, per-op energies, logits).
    const std::string json_text = json_out.str();
    EXPECT_EQ(json_text.front(), '[');
    EXPECT_EQ(json_text[json_text.size() - 2], ']');
    EXPECT_NE(json_text.find("\"impl\": \"SONIC\""),
              std::string::npos);
    EXPECT_NE(json_text.find("\"layers\": ["), std::string::npos);
    EXPECT_NE(json_text.find("\"energyByOp\": {"),
              std::string::npos);
    EXPECT_NE(json_text.find("\"logits\": ["), std::string::npos);
    u64 objects = 0;
    for (u64 pos = 0;
         (pos = json_text.find("\"planIndex\"", pos))
         != std::string::npos;
         ++pos)
        ++objects;
    EXPECT_EQ(objects, 2u);
}

TEST(Sinks, CsvQuotesHostileModelNamesAndJsonEscapes)
{
    // Model names are user-supplied: a comma/quote in a name must not
    // shift CSV columns, and control characters must not break JSON.
    SweepRecord record;
    record.planIndex = 0;
    record.spec.net = "evil,\"model\"\nname";

    std::ostringstream csv_out;
    CsvSink csv(csv_out);
    csv.begin(1);
    csv.add(record);
    const std::string csv_text = csv_out.str();
    // RFC 4180: quoted field, embedded quotes doubled.
    EXPECT_NE(csv_text.find("0,\"evil,\"\"model\"\"\nname\","),
              std::string::npos)
        << csv_text;

    std::ostringstream json_out;
    JsonSink json(json_out);
    json.begin(1);
    json.add(record);
    json.end();
    const std::string json_text = json_out.str();
    EXPECT_NE(json_text.find("evil,\\\"model\\\"\\nname"),
              std::string::npos)
        << json_text;
}

TEST(Engine, RunOneMatchesSweepRecord)
{
    SweepPlan plan;
    plan.nets({"HAR"}).impls({kernels::Impl::Sonic});
    Engine engine;
    const auto records = engine.run(plan);
    ASSERT_EQ(records.size(), 1u);
    const auto direct = engine.runOne(records[0].spec);
    expectResultsEqual(records[0].result, direct, "runOne vs sweep");
}

} // namespace
} // namespace sonic::app
