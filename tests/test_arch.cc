/**
 * @file
 * Unit tests for the device substrate: energy profile, power supplies,
 * the device's consume/fail path, stats attribution, and the memory
 * handles (including volatile scrambling at reboot).
 */

#include <gtest/gtest.h>

#include "arch/device.hh"
#include "arch/memory.hh"

namespace sonic::arch
{
namespace
{

Device
makeContinuousDevice()
{
    return Device(EnergyProfile::msp430fr5994(),
                  std::make_unique<ContinuousPower>());
}

TEST(EnergyProfile, AllOpsHaveCosts)
{
    const auto p = EnergyProfile::msp430fr5994();
    for (u32 o = 0; o < kNumOps; ++o) {
        const auto op = static_cast<Op>(o);
        EXPECT_GT(p.cycles(op), 0u) << opName(op);
        EXPECT_GT(p.nanojoules(op), 0.0) << opName(op);
    }
}

TEST(EnergyProfile, RelativeCostsSane)
{
    const auto p = EnergyProfile::msp430fr5994();
    // Peripheral multiply far slower than an add.
    EXPECT_GE(p.cycles(Op::AluMul), 8u);
    // FRAM writes cost more energy than reads, reads more than SRAM.
    EXPECT_GT(p.nanojoules(Op::FramStore), p.nanojoules(Op::FramLoad));
    EXPECT_GT(p.nanojoules(Op::FramLoad), p.nanojoules(Op::SramLoad));
    // Alpaca transition is much heavier than SONIC's.
    EXPECT_GT(p.nanojoules(Op::AlpacaTransition),
              10 * p.nanojoules(Op::TaskTransition));
    // LEA MAC is cheaper than a software fixed multiply.
    EXPECT_LT(p.nanojoules(Op::LeaMac), p.nanojoules(Op::FixedMul));
}

TEST(EnergyProfile, AblationsInflateTheRightOps)
{
    const auto std_p = EnergyProfile::msp430fr5994();
    const auto no_lea = EnergyProfile::msp430fr5994NoLea();
    const auto no_dma = EnergyProfile::msp430fr5994NoDma();
    EXPECT_GT(no_lea.nanojoules(Op::LeaMac),
              std_p.nanojoules(Op::LeaMac));
    EXPECT_GT(no_dma.nanojoules(Op::DmaWord),
              std_p.nanojoules(Op::DmaWord));
    EXPECT_EQ(no_lea.nanojoules(Op::FramLoad),
              std_p.nanojoules(Op::FramLoad));
}

TEST(CapacitorPower, CapacityFollowsCapacitance)
{
    CapacitorPower small(100e-6, 0.5e-3);
    CapacitorPower big(1e-3, 0.5e-3);
    EXPECT_NEAR(big.capacityNj() / small.capacityNj(), 10.0, 1e-6);
}

TEST(CapacitorPower, DrainsAndFails)
{
    CapacitorPower cap(100e-6, 0.5e-3);
    const f64 budget = cap.capacityNj();
    EXPECT_TRUE(cap.draw(budget * 0.6));
    EXPECT_FALSE(cap.draw(budget * 0.6)); // exceeds remaining charge
    EXPECT_EQ(cap.levelNj(), 0.0);
}

TEST(CapacitorPower, RechargeTimeMatchesHarvestPower)
{
    CapacitorPower cap(100e-6, 0.5e-3);
    const f64 budget = cap.capacityNj();
    EXPECT_FALSE(cap.draw(budget * 2)); // kill it
    const f64 dead = cap.recharge();
    EXPECT_NEAR(dead, budget / (0.5e-3 * 1e9), 1e-9);
    EXPECT_EQ(cap.levelNj(), cap.capacityNj());
}

TEST(CapacitorPower, HarvestAccounting)
{
    CapacitorPower cap(100e-6, 0.5e-3);
    const f64 initial = cap.harvestedNj();
    EXPECT_FALSE(cap.draw(cap.capacityNj() * 2));
    cap.recharge();
    EXPECT_GT(cap.harvestedNj(), initial);
}

TEST(FailOnceAfterOps, FailsExactlyOnce)
{
    FailOnceAfterOps psu(3);
    EXPECT_TRUE(psu.draw(1));
    EXPECT_TRUE(psu.draw(1));
    EXPECT_TRUE(psu.draw(1));
    EXPECT_FALSE(psu.draw(1)); // the 4th draw (index 3) fails
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(psu.draw(1));
    EXPECT_TRUE(psu.triggered());
}

TEST(FailEveryOps, PeriodicFailure)
{
    FailEveryOps psu(4);
    int ok = 0;
    for (int i = 0; i < 12; ++i)
        ok += psu.draw(1);
    EXPECT_EQ(ok, 9); // 3 failures in 12 draws
}

TEST(Device, ConsumeAccumulatesCyclesAndEnergy)
{
    auto dev = makeContinuousDevice();
    dev.consume(Op::AluMul, 10);
    const auto &p = dev.profile();
    EXPECT_EQ(dev.cycles(), 10 * p.cycles(Op::AluMul));
    EXPECT_NEAR(dev.stats().totalNanojoules(),
                10 * p.nanojoules(Op::AluMul), 1e-9);
}

TEST(Device, LiveSecondsUsesClock)
{
    auto dev = makeContinuousDevice();
    dev.consume(Op::Nop, 16'000'000); // 16M cycles at 16 MHz = 1 s
    EXPECT_NEAR(dev.liveSeconds(), 1.0, 1e-9);
}

TEST(Device, ThrowsOnExhaustedBuffer)
{
    Device dev(EnergyProfile::msp430fr5994(),
               std::make_unique<FailOnceAfterOps>(2));
    dev.consume(Op::Nop);
    dev.consume(Op::Nop);
    EXPECT_THROW(dev.consume(Op::Nop), PowerFailure);
    dev.reboot();
    dev.consume(Op::Nop); // recovered
    EXPECT_EQ(dev.rebootCount(), 1u);
}

TEST(Device, StatsAttributionByLayerAndPart)
{
    auto dev = makeContinuousDevice();
    const u16 conv = dev.registerLayer("conv");
    {
        ScopedLayer al(dev, conv);
        ScopedPart kp(dev, Part::Kernel);
        dev.consume(Op::FixedMul, 5);
    }
    dev.consume(Op::Branch, 3); // layer "other", control
    const auto &stats = dev.stats();
    EXPECT_EQ(stats.bucket(conv, Part::Kernel)
                  .count[static_cast<u32>(Op::FixedMul)],
              5u);
    EXPECT_EQ(stats.bucket(0, Part::Control)
                  .count[static_cast<u32>(Op::Branch)],
              3u);
    EXPECT_EQ(stats.layerOpCount(conv, Op::Branch), 0u);
}

TEST(Device, ScopedAttributionRestoresOnUnwind)
{
    Device dev(EnergyProfile::msp430fr5994(),
               std::make_unique<FailOnceAfterOps>(0));
    const u16 conv = dev.registerLayer("conv");
    try {
        ScopedLayer al(dev, conv);
        ScopedPart kp(dev, Part::Kernel);
        dev.consume(Op::Nop);
        FAIL() << "should have thrown";
    } catch (const PowerFailure &) {
    }
    EXPECT_EQ(dev.currentLayer(), 0);
    EXPECT_EQ(dev.currentPart(), Part::Control);
}

TEST(Device, StatsResetKeepsLayers)
{
    auto dev = makeContinuousDevice();
    const u16 conv = dev.registerLayer("conv");
    dev.consume(Op::Nop);
    dev.stats().reset();
    EXPECT_EQ(dev.stats().totalCycles(), 0u);
    EXPECT_EQ(dev.stats().layerName(conv), "conv");
}

TEST(Memory, NvArrayPersistsAcrossReboot)
{
    auto dev = makeContinuousDevice();
    NvArray<i16> arr(dev, 8, "a");
    arr.write(3, 1234);
    dev.reboot();
    EXPECT_EQ(arr.read(3), 1234);
}

TEST(Memory, VolArrayScrambledAtReboot)
{
    auto dev = makeContinuousDevice();
    VolArray<i16> arr(dev, 8, "v");
    arr.write(2, 77);
    EXPECT_EQ(arr.read(2), 77);
    dev.reboot();
    // Deterministic garbage: extremely unlikely to still be 77, and
    // two reboots give different garbage.
    const i16 after1 = arr.peek(2);
    dev.reboot();
    const i16 after2 = arr.peek(2);
    EXPECT_NE(after1, 77);
    EXPECT_NE(after1, after2);
}

TEST(Memory, VolVarScrambledAtReboot)
{
    auto dev = makeContinuousDevice();
    VolVar<i16> v(dev, "v", 55);
    EXPECT_EQ(v.read(), 55);
    dev.reboot();
    EXPECT_NE(v.peek(), 55);
}

TEST(Memory, AccessesAreCharged)
{
    auto dev = makeContinuousDevice();
    NvArray<i16> arr(dev, 4, "a");
    const u64 before = dev.cycles();
    arr.write(0, 1);
    (void)arr.read(0);
    const auto &p = dev.profile();
    EXPECT_EQ(dev.cycles() - before,
              p.cycles(Op::FramStore) + p.cycles(Op::FramLoad));
}

TEST(Memory, PokePeekUncharged)
{
    auto dev = makeContinuousDevice();
    NvArray<i16> arr(dev, 4, "a");
    arr.poke(1, 9);
    EXPECT_EQ(arr.peek(1), 9);
    EXPECT_EQ(dev.cycles(), 0u);
}

TEST(Memory, WideTypesChargePerWord)
{
    auto dev = makeContinuousDevice();
    NvVar<i32> v(dev, "v");
    const u64 before = dev.cycles();
    v.write(1);
    EXPECT_EQ(dev.cycles() - before,
              2 * dev.profile().cycles(Op::FramStore));
}

TEST(Memory, FramCapacityTracked)
{
    auto dev = makeContinuousDevice();
    EXPECT_EQ(dev.framBytesUsed(), 0u);
    {
        NvArray<i16> arr(dev, 100, "a");
        EXPECT_EQ(dev.framBytesUsed(), 200u);
    }
    EXPECT_EQ(dev.framBytesUsed(), 0u);
}

TEST(Memory, PowerFailureBeforeWriteLands)
{
    Device dev(EnergyProfile::msp430fr5994(),
               std::make_unique<FailOnceAfterOps>(0));
    NvArray<i16> arr(dev, 4, "a");
    arr.poke(0, 42);
    EXPECT_THROW(arr.write(0, 99), PowerFailure);
    // The store's energy draw failed, so the old value survives —
    // word-granularity write atomicity.
    EXPECT_EQ(arr.peek(0), 42);
}

TEST(Memory, BulkSpansMoveDataAndChargeLikeSingles)
{
    auto bulk_dev = makeContinuousDevice();
    auto single_dev = makeContinuousDevice();
    NvArray<i16> bulk(bulk_dev, 64, "bulk");
    NvArray<i16> single(single_dev, 64, "single");

    i16 buf[16];
    for (u32 i = 0; i < 16; ++i)
        buf[i] = static_cast<i16>(100 + i);
    bulk.writeRange(8, 16, buf);
    for (u32 i = 0; i < 16; ++i)
        single.write(8 + i, static_cast<i16>(100 + i));
    for (u32 i = 0; i < 16; ++i)
        EXPECT_EQ(bulk.peek(8 + i), 100 + i);

    i16 out[16] = {};
    bulk.readRange(8, 16, out);
    for (u32 i = 0; i < 16; ++i) {
        EXPECT_EQ(out[i], 100 + i);
        (void)single.read(8 + i);
    }

    bulk.fillRange(0, 8, 7);
    for (u32 i = 0; i < 8; ++i) {
        single.write(i, 7);
        EXPECT_EQ(bulk.peek(i), 7);
    }

    bulk.accumRange(0, 8, [](i16 v, u64 k) {
        return static_cast<i16>(v + static_cast<i16>(k));
    });
    for (u32 i = 0; i < 8; ++i) {
        const i16 v = single.read(i);
        single.write(i, static_cast<i16>(v + static_cast<i16>(i)));
        EXPECT_EQ(bulk.peek(i), 7 + static_cast<i16>(i));
    }

    // Identical cycle and energy totals to the per-element accesses.
    EXPECT_EQ(bulk_dev.cycles(), single_dev.cycles());
    EXPECT_EQ(bulk_dev.stats().totalNanojoules(),
              single_dev.stats().totalNanojoules());
}

TEST(Memory, ReadStrideGathersAndCharges)
{
    auto dev = makeContinuousDevice();
    NvArray<i16> arr(dev, 32, "a");
    for (u32 i = 0; i < 32; ++i)
        arr.poke(i, static_cast<i16>(i));
    i16 out[4];
    const u64 before = dev.cycles();
    arr.readStride(1, 8, 4, out);
    EXPECT_EQ(dev.cycles() - before,
              4 * dev.profile().cycles(Op::FramLoad));
    for (u32 k = 0; k < 4; ++k)
        EXPECT_EQ(out[k], static_cast<i16>(1 + 8 * k));
}

TEST(Memory, BulkSpanIsAtomicUnderPowerFailure)
{
    Device dev(EnergyProfile::msp430fr5994(),
               std::make_unique<FailOnceAfterOps>(0));
    NvArray<i16> arr(dev, 16, "a");
    arr.fillHost(42);
    i16 buf[16] = {};
    EXPECT_THROW(arr.writeRange(0, 16, buf), PowerFailure);
    // All-or-nothing: no element of the span landed.
    for (u32 i = 0; i < 16; ++i)
        EXPECT_EQ(arr.peek(i), 42);
    dev.reboot();
    arr.writeRange(0, 16, buf); // recovered
    EXPECT_EQ(arr.peek(15), 0);
}

TEST(Memory, AccumRangeAtomicUnderPowerFailure)
{
    // accumRange charges loads then stores; fail the store charge and
    // the span must be untouched.
    Device dev(EnergyProfile::msp430fr5994(),
               std::make_unique<FailOnceAfterOps>(1));
    NvArray<i16> arr(dev, 8, "a");
    arr.fillHost(-5);
    EXPECT_THROW(
        arr.accumRange(0, 8, [](i16 v, u64) -> i16 {
            return v > 0 ? v : 0;
        }),
        PowerFailure);
    for (u32 i = 0; i < 8; ++i)
        EXPECT_EQ(arr.peek(i), -5);
}

TEST(Memory, VolArraySpansChargeSramAndScramble)
{
    auto dev = makeContinuousDevice();
    VolArray<i16> arr(dev, 32, "v");
    i16 buf[32];
    for (u32 i = 0; i < 32; ++i)
        buf[i] = static_cast<i16>(i);
    const u64 before = dev.cycles();
    arr.writeRange(0, 32, buf);
    arr.readRange(0, 32, buf);
    EXPECT_EQ(dev.cycles() - before,
              32 * (dev.profile().cycles(Op::SramStore)
                    + dev.profile().cycles(Op::SramLoad)));
    dev.reboot();
    arr.readRange(0, 32, buf);
    bool scrambled = false;
    for (u32 i = 0; i < 32; ++i)
        scrambled |= buf[i] != static_cast<i16>(i);
    EXPECT_TRUE(scrambled);
}

TEST(Memory, WriteCoalescedChargesNStoresLandsLastValue)
{
    auto dev = makeContinuousDevice();
    NvVar<i16> v(dev, "v", 0);
    const u64 before = dev.cycles();
    v.writeCoalesced(9, 5);
    EXPECT_EQ(dev.cycles() - before,
              5 * dev.profile().cycles(Op::FramStore));
    EXPECT_EQ(v.peek(), 9);

    Device failing(EnergyProfile::msp430fr5994(),
                   std::make_unique<FailOnceAfterOps>(0));
    NvVar<i16> w(failing, "w", 3);
    EXPECT_THROW(w.writeCoalesced(9, 5), PowerFailure);
    EXPECT_EQ(w.peek(), 3); // atomic as a unit
}

TEST(Device, FailingBulkChargeCountsOnePendingReboot)
{
    // A PowerFailure thrown from a bulk (count > 1) charge is one
    // failure, not one per word: the pending counter records exactly
    // one un-modelled reboot, and reboot() consumes the backlog.
    Device dev(EnergyProfile::msp430fr5994(),
               std::make_unique<FailOnceAfterOps>(0));
    NvArray<i16> arr(dev, 64, "a");
    i16 buf[64] = {};
    EXPECT_EQ(dev.rebootsPending(), 0u);
    EXPECT_THROW(arr.writeRange(0, 64, buf), PowerFailure);
    EXPECT_EQ(dev.rebootsPending(), 1u);
    dev.reboot();
    EXPECT_EQ(dev.rebootsPending(), 0u);
    EXPECT_EQ(dev.rebootCount(), 1u);
}

TEST(Device, RebootConsumesWholeFailureBacklog)
{
    // Two failures charged before the scheduler models the power cycle
    // still count as a single reboot; the backlog never double-counts.
    Device dev(EnergyProfile::msp430fr5994(),
               std::make_unique<FailEveryOps>(1));
    EXPECT_THROW(dev.consume(Op::Nop), PowerFailure);
    EXPECT_THROW(dev.consume(Op::Nop), PowerFailure);
    EXPECT_EQ(dev.rebootsPending(), 2u);
    dev.reboot();
    EXPECT_EQ(dev.rebootsPending(), 0u);
    EXPECT_EQ(dev.rebootCount(), 1u);
}

TEST(SchedulePower, FiresExactlyAtScheduledIndices)
{
    // Indices are draw coordinates; duplicates and ordering are
    // normalized at construction.
    SchedulePower psu({7, 3, 3, 11});
    std::vector<u64> failed;
    for (u64 i = 0; i < 20; ++i)
        if (!psu.draw(1.0))
            failed.push_back(i);
    EXPECT_EQ(failed, (std::vector<u64>{3, 7, 11}));
    EXPECT_EQ(psu.firedCount(), 3u);
    EXPECT_EQ(psu.drawsSoFar(), 20u);
    EXPECT_TRUE(psu.intermittent());
    EXPECT_FALSE(SchedulePower(std::vector<u64>{}).intermittent());
}

TEST(SchedulePower, IndicesBeyondTheRunNeverFire)
{
    SchedulePower psu({100});
    for (u64 i = 0; i < 50; ++i)
        EXPECT_TRUE(psu.draw(1.0));
    EXPECT_EQ(psu.firedCount(), 0u);
}

TEST(SchedulePower, LeaseModeFailsOnTheSameDrawAsPerOp)
{
    // The lease protocol must land every scheduled brown-out on the
    // bit-identical consume call the per-draw path fails on.
    const std::vector<u64> schedule = {0, 1, 5, 6, 7, 40, 41, 90};
    for (const bool per_op : {false, true}) {
        DeviceConfig config;
        config.perOpPowerDraw = per_op;
        Device dev(EnergyProfile::msp430fr5994(),
                   std::make_unique<SchedulePower>(schedule), config);
        std::vector<u64> failed_steps;
        for (u64 i = 0; i < 120; ++i) {
            try {
                dev.consume(Op::FixedMul, 1 + i % 3);
            } catch (const PowerFailure &) {
                failed_steps.push_back(i);
                dev.reboot();
            }
        }
        EXPECT_EQ(failed_steps, schedule) << "per_op=" << per_op;
    }
}

TEST(Memory, EmptySpansChargeOneDrawUnitAndMoveNothing)
{
    // An n == 0 span is one consume call of zero instances: no
    // cycles, no energy, no data movement — but still one draw unit
    // (the accounting boundary crossing), exactly like consume(op, 0).
    auto dev = makeContinuousDevice();
    NvArray<i16> arr(dev, 8, "a");
    arr.fillHost(5);
    i16 buf[4] = {99, 99, 99, 99};
    arr.readRange(3, 0, buf);
    arr.writeRange(3, 0, buf);
    arr.fillRange(3, 0, 7);
    arr.readStride(0, 2, 0, buf);
    arr.accumRange(0, 0, [](i16, u64) -> i16 { return -1; });
    EXPECT_EQ(dev.cycles(), 0u);
    EXPECT_EQ(dev.stats().totalNanojoules(), 0.0);
    EXPECT_EQ(buf[0], 99);
    for (u32 i = 0; i < 8; ++i)
        EXPECT_EQ(arr.peek(i), 5);

    // The draw-unit accounting: a supply that fails on draw index 6
    // sees each empty span as one draw.
    Device counting(EnergyProfile::msp430fr5994(),
                    std::make_unique<SchedulePower>(
                        std::vector<u64>{6}));
    NvArray<i16> tiny(counting, 4, "t");
    for (u32 i = 0; i < 6; ++i)
        tiny.readRange(0, 0, buf); // six empty spans = draws 0..5
    EXPECT_THROW(tiny.readRange(0, 0, buf), PowerFailure);
}

TEST(Memory, SpanStraddlingLeaseExhaustionMatchesPerOpMode)
{
    // A span whose charge arrives with the lease partly spent crosses
    // back into the slow path; totals and the failing step must match
    // the per-op reference exactly, at every injection point.
    auto script = [](Device &dev) {
        NvArray<i16> arr(dev, 256, "a");
        i16 buf[64];
        std::vector<u32> failures;
        for (u32 step = 0; step < 64; ++step) {
            const u32 n = 1 + step % 64;
            try {
                if (step % 3 == 0) {
                    arr.fillRange(0, n, static_cast<i16>(step));
                } else if (step % 3 == 1) {
                    arr.readRange(64, n, buf);
                } else {
                    arr.accumRange(128, n, [](i16 v, u64 k) {
                        return static_cast<i16>(v + k);
                    });
                }
            } catch (const PowerFailure &) {
                failures.push_back(step);
                dev.reboot();
            }
        }
        return failures;
    };
    for (u64 fail_after = 0; fail_after < 96; fail_after += 7) {
        DeviceConfig leased, per_op;
        per_op.perOpPowerDraw = true;
        Device a(EnergyProfile::msp430fr5994(),
                 std::make_unique<FailOnceAfterOps>(fail_after),
                 leased);
        Device b(EnergyProfile::msp430fr5994(),
                 std::make_unique<FailOnceAfterOps>(fail_after),
                 per_op);
        EXPECT_EQ(script(a), script(b)) << fail_after;
        EXPECT_EQ(a.cycles(), b.cycles()) << fail_after;
        EXPECT_EQ(a.stats().totalNanojoules(),
                  b.stats().totalNanojoules())
            << fail_after;
    }
}

TEST(NvmDigest, CapturesFramChangesAndNothingElse)
{
    auto dev = makeContinuousDevice();
    NvArray<i16> fram(dev, 8, "nv");
    VolArray<i16> sram(dev, 8, "v");
    NvVar<i32> var(dev, "x", 0);
    const u64 initial = dev.nvmDigest();
    EXPECT_EQ(dev.nvmDigest(), initial); // pure

    sram.poke(3, 99); // volatile state is not part of the NVM digest
    EXPECT_EQ(dev.nvmDigest(), initial);

    fram.poke(3, 99);
    const u64 changed = dev.nvmDigest();
    EXPECT_NE(changed, initial);
    fram.poke(3, 0);
    EXPECT_EQ(dev.nvmDigest(), initial);

    var.poke(-7);
    EXPECT_NE(dev.nvmDigest(), initial);
}

TEST(NvmDigest, RebootHookSnapshotsEveryReboot)
{
    Device dev(EnergyProfile::msp430fr5994(),
               std::make_unique<FailEveryOps>(3));
    NvArray<i16> fram(dev, 4, "nv");
    std::vector<u64> chain;
    dev.setRebootHook([&chain](Device &d, u64 index) {
        EXPECT_EQ(index, chain.size() + 1);
        chain.push_back(d.nvmDigest());
    });
    for (u32 i = 0; i < 9; ++i) {
        try {
            fram.write(i % 4, static_cast<i16>(i));
        } catch (const PowerFailure &) {
            dev.reboot();
        }
    }
    EXPECT_EQ(chain.size(), dev.rebootCount());
    EXPECT_GT(chain.size(), 1u);
}

TEST(Device, BucketCacheSurvivesLayerRegistration)
{
    // Stats buckets are address-stable; interleaving registrations and
    // consumes must never misattribute.
    auto dev = makeContinuousDevice();
    std::vector<u16> layers;
    for (u32 i = 0; i < 64; ++i) {
        layers.push_back(dev.registerLayer("l" + std::to_string(i)));
        ScopedLayer al(dev, layers.back());
        dev.consume(Op::FixedMul, i + 1);
    }
    for (u32 i = 0; i < 64; ++i) {
        EXPECT_EQ(dev.stats().layerOpCount(layers[i], Op::FixedMul),
                  i + 1);
    }
}

} // namespace
} // namespace sonic::arch
