/**
 * @file
 * Unit tests for the device substrate: energy profile, power supplies,
 * the device's consume/fail path, stats attribution, and the memory
 * handles (including volatile scrambling at reboot).
 */

#include <gtest/gtest.h>

#include "arch/device.hh"
#include "arch/memory.hh"

namespace sonic::arch
{
namespace
{

Device
makeContinuousDevice()
{
    return Device(EnergyProfile::msp430fr5994(),
                  std::make_unique<ContinuousPower>());
}

TEST(EnergyProfile, AllOpsHaveCosts)
{
    const auto p = EnergyProfile::msp430fr5994();
    for (u32 o = 0; o < kNumOps; ++o) {
        const auto op = static_cast<Op>(o);
        EXPECT_GT(p.cycles(op), 0u) << opName(op);
        EXPECT_GT(p.nanojoules(op), 0.0) << opName(op);
    }
}

TEST(EnergyProfile, RelativeCostsSane)
{
    const auto p = EnergyProfile::msp430fr5994();
    // Peripheral multiply far slower than an add.
    EXPECT_GE(p.cycles(Op::AluMul), 8u);
    // FRAM writes cost more energy than reads, reads more than SRAM.
    EXPECT_GT(p.nanojoules(Op::FramStore), p.nanojoules(Op::FramLoad));
    EXPECT_GT(p.nanojoules(Op::FramLoad), p.nanojoules(Op::SramLoad));
    // Alpaca transition is much heavier than SONIC's.
    EXPECT_GT(p.nanojoules(Op::AlpacaTransition),
              10 * p.nanojoules(Op::TaskTransition));
    // LEA MAC is cheaper than a software fixed multiply.
    EXPECT_LT(p.nanojoules(Op::LeaMac), p.nanojoules(Op::FixedMul));
}

TEST(EnergyProfile, AblationsInflateTheRightOps)
{
    const auto std_p = EnergyProfile::msp430fr5994();
    const auto no_lea = EnergyProfile::msp430fr5994NoLea();
    const auto no_dma = EnergyProfile::msp430fr5994NoDma();
    EXPECT_GT(no_lea.nanojoules(Op::LeaMac),
              std_p.nanojoules(Op::LeaMac));
    EXPECT_GT(no_dma.nanojoules(Op::DmaWord),
              std_p.nanojoules(Op::DmaWord));
    EXPECT_EQ(no_lea.nanojoules(Op::FramLoad),
              std_p.nanojoules(Op::FramLoad));
}

TEST(CapacitorPower, CapacityFollowsCapacitance)
{
    CapacitorPower small(100e-6, 0.5e-3);
    CapacitorPower big(1e-3, 0.5e-3);
    EXPECT_NEAR(big.capacityNj() / small.capacityNj(), 10.0, 1e-6);
}

TEST(CapacitorPower, DrainsAndFails)
{
    CapacitorPower cap(100e-6, 0.5e-3);
    const f64 budget = cap.capacityNj();
    EXPECT_TRUE(cap.draw(budget * 0.6));
    EXPECT_FALSE(cap.draw(budget * 0.6)); // exceeds remaining charge
    EXPECT_EQ(cap.levelNj(), 0.0);
}

TEST(CapacitorPower, RechargeTimeMatchesHarvestPower)
{
    CapacitorPower cap(100e-6, 0.5e-3);
    const f64 budget = cap.capacityNj();
    EXPECT_FALSE(cap.draw(budget * 2)); // kill it
    const f64 dead = cap.recharge();
    EXPECT_NEAR(dead, budget / (0.5e-3 * 1e9), 1e-9);
    EXPECT_EQ(cap.levelNj(), cap.capacityNj());
}

TEST(CapacitorPower, HarvestAccounting)
{
    CapacitorPower cap(100e-6, 0.5e-3);
    const f64 initial = cap.harvestedNj();
    EXPECT_FALSE(cap.draw(cap.capacityNj() * 2));
    cap.recharge();
    EXPECT_GT(cap.harvestedNj(), initial);
}

TEST(FailOnceAfterOps, FailsExactlyOnce)
{
    FailOnceAfterOps psu(3);
    EXPECT_TRUE(psu.draw(1));
    EXPECT_TRUE(psu.draw(1));
    EXPECT_TRUE(psu.draw(1));
    EXPECT_FALSE(psu.draw(1)); // the 4th draw (index 3) fails
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(psu.draw(1));
    EXPECT_TRUE(psu.triggered());
}

TEST(FailEveryOps, PeriodicFailure)
{
    FailEveryOps psu(4);
    int ok = 0;
    for (int i = 0; i < 12; ++i)
        ok += psu.draw(1);
    EXPECT_EQ(ok, 9); // 3 failures in 12 draws
}

TEST(Device, ConsumeAccumulatesCyclesAndEnergy)
{
    auto dev = makeContinuousDevice();
    dev.consume(Op::AluMul, 10);
    const auto &p = dev.profile();
    EXPECT_EQ(dev.cycles(), 10 * p.cycles(Op::AluMul));
    EXPECT_NEAR(dev.stats().totalNanojoules(),
                10 * p.nanojoules(Op::AluMul), 1e-9);
}

TEST(Device, LiveSecondsUsesClock)
{
    auto dev = makeContinuousDevice();
    dev.consume(Op::Nop, 16'000'000); // 16M cycles at 16 MHz = 1 s
    EXPECT_NEAR(dev.liveSeconds(), 1.0, 1e-9);
}

TEST(Device, ThrowsOnExhaustedBuffer)
{
    Device dev(EnergyProfile::msp430fr5994(),
               std::make_unique<FailOnceAfterOps>(2));
    dev.consume(Op::Nop);
    dev.consume(Op::Nop);
    EXPECT_THROW(dev.consume(Op::Nop), PowerFailure);
    dev.reboot();
    dev.consume(Op::Nop); // recovered
    EXPECT_EQ(dev.rebootCount(), 1u);
}

TEST(Device, StatsAttributionByLayerAndPart)
{
    auto dev = makeContinuousDevice();
    const u16 conv = dev.registerLayer("conv");
    {
        ScopedLayer al(dev, conv);
        ScopedPart kp(dev, Part::Kernel);
        dev.consume(Op::FixedMul, 5);
    }
    dev.consume(Op::Branch, 3); // layer "other", control
    const auto &stats = dev.stats();
    EXPECT_EQ(stats.bucket(conv, Part::Kernel)
                  .count[static_cast<u32>(Op::FixedMul)],
              5u);
    EXPECT_EQ(stats.bucket(0, Part::Control)
                  .count[static_cast<u32>(Op::Branch)],
              3u);
    EXPECT_EQ(stats.layerOpCount(conv, Op::Branch), 0u);
}

TEST(Device, ScopedAttributionRestoresOnUnwind)
{
    Device dev(EnergyProfile::msp430fr5994(),
               std::make_unique<FailOnceAfterOps>(0));
    const u16 conv = dev.registerLayer("conv");
    try {
        ScopedLayer al(dev, conv);
        ScopedPart kp(dev, Part::Kernel);
        dev.consume(Op::Nop);
        FAIL() << "should have thrown";
    } catch (const PowerFailure &) {
    }
    EXPECT_EQ(dev.currentLayer(), 0);
    EXPECT_EQ(dev.currentPart(), Part::Control);
}

TEST(Device, StatsResetKeepsLayers)
{
    auto dev = makeContinuousDevice();
    const u16 conv = dev.registerLayer("conv");
    dev.consume(Op::Nop);
    dev.stats().reset();
    EXPECT_EQ(dev.stats().totalCycles(), 0u);
    EXPECT_EQ(dev.stats().layerName(conv), "conv");
}

TEST(Memory, NvArrayPersistsAcrossReboot)
{
    auto dev = makeContinuousDevice();
    NvArray<i16> arr(dev, 8, "a");
    arr.write(3, 1234);
    dev.reboot();
    EXPECT_EQ(arr.read(3), 1234);
}

TEST(Memory, VolArrayScrambledAtReboot)
{
    auto dev = makeContinuousDevice();
    VolArray<i16> arr(dev, 8, "v");
    arr.write(2, 77);
    EXPECT_EQ(arr.read(2), 77);
    dev.reboot();
    // Deterministic garbage: extremely unlikely to still be 77, and
    // two reboots give different garbage.
    const i16 after1 = arr.peek(2);
    dev.reboot();
    const i16 after2 = arr.peek(2);
    EXPECT_NE(after1, 77);
    EXPECT_NE(after1, after2);
}

TEST(Memory, VolVarScrambledAtReboot)
{
    auto dev = makeContinuousDevice();
    VolVar<i16> v(dev, "v", 55);
    EXPECT_EQ(v.read(), 55);
    dev.reboot();
    EXPECT_NE(v.peek(), 55);
}

TEST(Memory, AccessesAreCharged)
{
    auto dev = makeContinuousDevice();
    NvArray<i16> arr(dev, 4, "a");
    const u64 before = dev.cycles();
    arr.write(0, 1);
    (void)arr.read(0);
    const auto &p = dev.profile();
    EXPECT_EQ(dev.cycles() - before,
              p.cycles(Op::FramStore) + p.cycles(Op::FramLoad));
}

TEST(Memory, PokePeekUncharged)
{
    auto dev = makeContinuousDevice();
    NvArray<i16> arr(dev, 4, "a");
    arr.poke(1, 9);
    EXPECT_EQ(arr.peek(1), 9);
    EXPECT_EQ(dev.cycles(), 0u);
}

TEST(Memory, WideTypesChargePerWord)
{
    auto dev = makeContinuousDevice();
    NvVar<i32> v(dev, "v");
    const u64 before = dev.cycles();
    v.write(1);
    EXPECT_EQ(dev.cycles() - before,
              2 * dev.profile().cycles(Op::FramStore));
}

TEST(Memory, FramCapacityTracked)
{
    auto dev = makeContinuousDevice();
    EXPECT_EQ(dev.framBytesUsed(), 0u);
    {
        NvArray<i16> arr(dev, 100, "a");
        EXPECT_EQ(dev.framBytesUsed(), 200u);
    }
    EXPECT_EQ(dev.framBytesUsed(), 0u);
}

TEST(Memory, PowerFailureBeforeWriteLands)
{
    Device dev(EnergyProfile::msp430fr5994(),
               std::make_unique<FailOnceAfterOps>(0));
    NvArray<i16> arr(dev, 4, "a");
    arr.poke(0, 42);
    EXPECT_THROW(arr.write(0, 99), PowerFailure);
    // The store's energy draw failed, so the old value survives —
    // word-granularity write atomicity.
    EXPECT_EQ(arr.peek(0), 42);
}

} // namespace
} // namespace sonic::arch
