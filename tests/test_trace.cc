/**
 * @file
 * Tests for the event-tracing subsystem: .sonictrace round trips and
 * corruption rejection (the container inherits the .sonicz checksum
 * machinery, so every byte flip and every truncation must be caught),
 * fleet trace sampling (bit-identical bytes across worker thread
 * counts; recorded energy matching the telemetry bit-for-bit; the
 * untraced fleet byte-identical to a never-traced one), the Chrome /
 * flame / summary renderers, and the oracle's divergence trace dumps.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "fleet/fleet.hh"
#include "trace/trace.hh"
#include "verify/oracle.hh"
#include "verify/workload.hh"

namespace sonic::trace
{
namespace
{

/** A fast mixed fleet over the tiny golden workload (the test_fleet
 * shape) with 1-in-4 devices sampled for tracing. */
fleet::FleetPlan
tracedFleet(u32 devices, u32 trace_every = 4)
{
    fleet::FleetPlan plan;
    plan.devices = devices;
    plan.nets = {"golden"};
    plan.impls = {kernels::Impl::Sonic, kernels::Impl::Tile8};
    plan.environments = {{"rf-paper", 100e-6},
                         {"trace-rf-office", 50e-6},
                         {"duty-cycle", 100e-6},
                         {"continuous", 0.0}};
    plan.maxInferencesPerDevice = 2;
    plan.baseSeed = 0xf1ee7;
    plan.traceEvery = trace_every;
    return plan;
}

/** A small synthetic trace exercising every row field. */
std::string
packSyntheticTrace()
{
    TraceRecorder recorder(7);
    for (u32 i = 0; i < 120; ++i) {
        const auto kind = static_cast<TraceEventKind>(
            i % static_cast<u32>(TraceEventKind::NumKinds));
        std::string label;
        if (kind == TraceEventKind::LayerEnter)
            label = i % 2 ? "conv1" : "fc";
        recorder.record(kind, i, 0.25 * i, 1e-3 * i,
                        kind == TraceEventKind::Recharge ? 0.125 : 0.0,
                        label);
    }
    std::ostringstream os;
    writeTrace(os, {&recorder});
    return os.str();
}

std::string
collectorBytes(const TraceCollector &collector)
{
    std::ostringstream os;
    collector.write(os);
    return os.str();
}

u64
countKind(const std::vector<telemetry::TraceRow> &rows, u64 device,
          TraceEventKind kind)
{
    u64 n = 0;
    for (const auto &row : rows)
        if (row.device == device
            && row.kind == static_cast<u32>(kind))
            ++n;
    return n;
}

// --- Container round trip and corruption ----------------------------

TEST(TraceContainer, SyntheticRowsRoundTripBitExactly)
{
    TraceRecorder recorder(3);
    recorder.record(TraceEventKind::RoundBegin, 0, 1.5, 0.25, 0.0);
    recorder.record(TraceEventKind::LayerEnter, 2, 1.625, 0.3125,
                    0.0, "conv1");
    recorder.record(TraceEventKind::Recharge, 0, 9.75, 0.5, 8.125);
    std::ostringstream os;
    writeTrace(os, {&recorder});

    std::istringstream in(os.str());
    std::vector<telemetry::TraceRow> rows;
    telemetry::SoniczInfo info;
    std::string error;
    ASSERT_TRUE(readTrace(in, &rows, &info, &error)) << error;
    EXPECT_EQ(info.kind, telemetry::SchemaKind::Trace);
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].device, 3u);
    EXPECT_EQ(rows[0].kind,
              static_cast<u32>(TraceEventKind::RoundBegin));
    EXPECT_EQ(rows[0].t, 1.5);
    EXPECT_EQ(rows[0].energyJ, 0.25);
    EXPECT_EQ(rows[1].arg, 2u);
    EXPECT_EQ(rows[1].label, "conv1");
    EXPECT_EQ(rows[2].value, 8.125);
}

TEST(TraceContainer, EveryTruncationIsRejected)
{
    const std::string packed = packSyntheticTrace();
    for (u64 cut = 0; cut < packed.size(); ++cut) {
        std::istringstream in(packed.substr(0, cut));
        std::string error;
        EXPECT_FALSE(readTrace(in, nullptr, nullptr, &error))
            << "prefix of " << cut << " bytes was accepted";
        EXPECT_FALSE(error.empty());
    }
}

TEST(TraceContainer, EverySingleByteCorruptionIsRejected)
{
    const std::string packed = packSyntheticTrace();
    for (u64 i = 0; i < packed.size(); ++i) {
        std::string mutated = packed;
        mutated[i] = static_cast<char>(mutated[i] ^ 0x5a);
        std::istringstream in(mutated);
        std::string error;
        EXPECT_FALSE(readTrace(in, nullptr, nullptr, &error))
            << "flip at byte " << i << " was accepted";
    }

    // Trailing garbage shifts the footer off its position.
    std::istringstream in(packed + "x");
    std::string error;
    EXPECT_FALSE(readTrace(in, nullptr, nullptr, &error));
    EXPECT_FALSE(error.empty());
}

// --- Fleet sampling -------------------------------------------------

TEST(FleetTrace, SampledBytesAreBitIdenticalAcrossThreads)
{
    const auto plan = tracedFleet(16);
    std::string reference;
    for (const u32 threads : {1u, 2u, 8u}) {
        TraceCollector collector;
        fleet::FleetOptions options{threads};
        options.traces = &collector;
        (void)fleet::runFleet(plan, options);
        EXPECT_EQ(collector.devices(), 4u); // 0, 4, 8, 12
        const std::string bytes = collectorBytes(collector);
        if (reference.empty())
            reference = bytes;
        else
            EXPECT_EQ(bytes, reference) << threads << " threads";
    }
    EXPECT_FALSE(reference.empty());
}

TEST(FleetTrace, RoundEnergySumsMatchTelemetryBitForBit)
{
    const auto plan = tracedFleet(16);
    TraceCollector collector;
    fleet::FleetOptions options{2};
    options.traces = &collector;
    (void)fleet::runFleet(plan, options);

    std::istringstream in(collectorBytes(collector));
    std::vector<telemetry::TraceRow> rows;
    std::string error;
    ASSERT_TRUE(readTrace(in, &rows, nullptr, &error)) << error;
    ASSERT_FALSE(rows.empty());

    u32 devices_checked = 0;
    for (const TraceRecorder *recorder : collector.ordered()) {
        const u64 d = recorder->deviceIndex();
        const auto telemetry = fleet::simulateDevice(
            plan, static_cast<u32>(d));

        // Summing the per-round energy values in round order is the
        // exact accumulation the fleet's telemetry performs, so the
        // doubles must match bit for bit, not approximately.
        f64 energy = 0.0;
        for (const auto &row : rows)
            if (row.device == d
                && row.kind
                       == static_cast<u32>(TraceEventKind::RoundEnd))
                energy += row.value;
        EXPECT_EQ(energy, telemetry.energyJ) << "device " << d;

        EXPECT_EQ(countKind(rows, d, TraceEventKind::Reboot),
                  telemetry.reboots)
            << "device " << d;
        EXPECT_EQ(countKind(rows, d, TraceEventKind::PowerFailure),
                  telemetry.reboots)
            << "device " << d;
        ++devices_checked;
    }
    EXPECT_EQ(devices_checked, 4u);

    // Recorded clocks are monotone per device: setBase lifts each
    // fresh per-round device onto the lifetime timeline, and the
    // fleet-recorded recharge rows stamp after their dead time accrues.
    f64 last_t = -1.0;
    for (const auto &row : rows) {
        if (row.device != collector.ordered().front()->deviceIndex())
            continue;
        EXPECT_GE(row.t, last_t);
        last_t = row.t;
    }
}

TEST(FleetTrace, TracingLeavesSummaryAndCacheDiagnosticsUntouched)
{
    const auto plan = tracedFleet(16);
    const auto untraced = fleet::runFleet(plan, fleet::FleetOptions{2});

    TraceCollector collector;
    fleet::FleetOptions options{2};
    options.traces = &collector;
    const auto traced = fleet::runFleet(plan, options);

    EXPECT_EQ(traced.toJson(), untraced.toJson());

    // traceEvery without a collector is inert: the plan stays fully
    // memoized and byte-identical.
    const auto inert = fleet::runFleet(plan, fleet::FleetOptions{2});
    EXPECT_EQ(inert.toJson(), untraced.toJson());
}

// --- Renderers ------------------------------------------------------

TEST(TraceExport, ChromeFlameAndSummaryRenderTheFleetTrace)
{
    const auto plan = tracedFleet(8);
    TraceCollector collector;
    fleet::FleetOptions options{1};
    options.traces = &collector;
    (void)fleet::runFleet(plan, options);

    std::istringstream in(collectorBytes(collector));
    std::vector<telemetry::TraceRow> rows;
    std::string error;
    ASSERT_TRUE(readTrace(in, &rows, nullptr, &error)) << error;

    std::ostringstream chrome;
    exportChromeTrace(rows, chrome);
    const std::string json = chrome.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"round\""), std::string::npos);
    EXPECT_NE(json.find("\"reboot\""), std::string::npos);
    EXPECT_NE(json.find("\"lease-grant\""), std::string::npos);
    EXPECT_EQ(json.back(), '\n');
    // Braces and brackets balance (the export is one JSON object).
    i64 braces = 0, brackets = 0;
    bool in_string = false;
    for (u64 i = 0; i < json.size(); ++i) {
        const char c = json[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{')
            ++braces;
        else if (c == '}')
            --braces;
        else if (c == '[')
            ++brackets;
        else if (c == ']')
            --brackets;
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);

    std::ostringstream flame;
    writeFlameRollup(rows, flame);
    EXPECT_NE(flame.str().find("total"), std::string::npos);
    EXPECT_NE(flame.str().find("100%"), std::string::npos);

    std::ostringstream summary;
    writeTraceSummary(rows, summary);
    EXPECT_NE(summary.str().find("devices:"), std::string::npos);
    EXPECT_NE(summary.str().find("reboots:"), std::string::npos);
}

// --- Oracle divergence dumps ----------------------------------------

TEST(OracleTrace, DumpScheduleTraceWritesAReadableTrace)
{
    verify::LocalWorkload workload;
    workload.net = verify::goldenNet();
    workload.input = verify::goldenInput();
    workload.impl = kernels::Impl::Sonic;

    const verify::Schedule schedule = {50, 500, 5'000};
    const std::string path =
        testing::TempDir() + "oracle_dump.sonictrace";
    std::string error;
    ASSERT_TRUE(
        verify::dumpScheduleTrace(workload, schedule, path, &error))
        << error;

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.is_open());
    std::vector<telemetry::TraceRow> rows;
    telemetry::SoniczInfo info;
    ASSERT_TRUE(readTrace(in, &rows, &info, &error)) << error;
    EXPECT_EQ(info.kind, telemetry::SchemaKind::Trace);
    ASSERT_FALSE(rows.empty());

    // The schedule's failures show up as reboot events, and the
    // inference spans stay balanced (the Infer guard closes its span
    // even when a PowerFailure unwinds out of the kernel).
    EXPECT_GE(countKind(rows, 0, TraceEventKind::Reboot), 1u);
    EXPECT_EQ(countKind(rows, 0, TraceEventKind::InferBegin),
              countKind(rows, 0, TraceEventKind::InferEnd));
    EXPECT_GE(countKind(rows, 0, TraceEventKind::LayerEnter), 1u);
    std::remove(path.c_str());
}

} // namespace
} // namespace sonic::trace
