/**
 * @file
 * Unit tests for util: deterministic RNG, table formatting, and the
 * shortest-round-trip f64 formatter.
 */

#include <gtest/gtest.h>

#include <bit>
#include <charconv>
#include <cmath>
#include <random>
#include <string>

#include "util/fmt.hh"
#include "util/rng.hh"
#include "util/table.hh"

namespace sonic
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const f64 u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const f64 u = rng.uniform(-2.5, 3.5);
        EXPECT_GE(u, -2.5);
        EXPECT_LT(u, 3.5);
    }
}

TEST(Rng, BelowStaysBelow)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BetweenInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const i64 v = rng.between(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsRoughlyStandard)
{
    Rng rng(11);
    f64 sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const f64 g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(13);
    int hits = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<f64>(hits) / n, 0.3, 0.03);
}

TEST(Rng, ForkIndependentStreams)
{
    Rng base(5);
    Rng a = base.fork(1);
    Rng b = base.fork(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, ForkDeterministic)
{
    Rng a = Rng(5).fork(9);
    Rng b = Rng(5).fork(9);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Table, AlignsColumns)
{
    Table t({"a", "bb"});
    t.row().cell(std::string("x")).cell(u64{12});
    t.row().cell(std::string("longer")).cell(u64{3});
    const std::string s = t.str();
    EXPECT_NE(s.find("| a "), std::string::npos);
    EXPECT_NE(s.find("longer"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, CsvRoundTrip)
{
    Table t({"x", "y"});
    t.row().cell(u64{1}).cell(2.5, 1);
    EXPECT_EQ(t.csv(), "x,y\n1,2.5\n");
}

TEST(Table, FormatEnergyPicksUnit)
{
    EXPECT_EQ(formatEnergy(1.5), "1.500 J");
    EXPECT_EQ(formatEnergy(2e-3), "2.000 mJ");
    EXPECT_EQ(formatEnergy(3e-6), "3.000 uJ");
    EXPECT_EQ(formatEnergy(4e-9), "4.000 nJ");
}

TEST(Table, FormatSeconds)
{
    EXPECT_EQ(formatSeconds(2.0), "2.000 s");
    EXPECT_EQ(formatSeconds(0.5), "500.000 ms");
}

TEST(Table, AsciiBarClamps)
{
    EXPECT_EQ(asciiBar(0.0, 4), "....");
    EXPECT_EQ(asciiBar(1.0, 4), "####");
    EXPECT_EQ(asciiBar(2.0, 4), "####");
    EXPECT_EQ(asciiBar(0.5, 4), "##..");
}

TEST(FmtF64, ProducesShortestForms)
{
    EXPECT_EQ(fmtF64(0.0), "0");
    EXPECT_EQ(fmtF64(-0.0), "-0"); // the sign bit survives
    EXPECT_EQ(fmtF64(0.1), "0.1");
    EXPECT_EQ(fmtF64(86400.0), "86400");
    EXPECT_EQ(fmtF64(1e300), "1e+300");
    EXPECT_EQ(fmtF64(-2.5), "-2.5");
}

TEST(FmtF64, RoundTripsRandomBitPatterns)
{
    // The whole point of replacing precision(12): parsing the printed
    // digits must recover the exact bits. std::from_chars is a
    // correctly-rounded inverse (and, unlike std::stod, accepts
    // subnormals without raising range errors), so this closes the
    // loop.
    std::mt19937_64 rng(0xf64);
    for (u32 i = 0; i < 20000; ++i) {
        const f64 value = std::bit_cast<f64>(rng());
        if (!std::isfinite(value))
            continue;
        const std::string text = fmtF64(value);
        f64 reparsed = 0.0;
        const auto result = std::from_chars(
            text.data(), text.data() + text.size(), reparsed);
        ASSERT_EQ(result.ptr, text.data() + text.size()) << text;
        EXPECT_EQ(std::bit_cast<u64>(reparsed),
                  std::bit_cast<u64>(value))
            << text;
    }
    // The old formatter's concrete casualty class: close f64s that
    // agree in their first 12 significant digits stay distinct.
    const f64 a = 0.1234567890123456;
    const f64 b = std::nextafter(a, 1.0);
    EXPECT_NE(fmtF64(a), fmtF64(b));
}

} // namespace
} // namespace sonic
