/**
 * @file
 * The deployment planner: objective scoring, the per-coordinate
 * argmax against synthetic cells (cross-checked exhaustively), the
 * plan artifact's strict JSON round trip, decision determinism across
 * thread counts, the planned fleet honoring its choices while keeping
 * the hash-dealt env/net/pipeline/seed deals, and the acceptance
 * property the subsystem exists for: a decided plan's confirming run
 * ties-or-beats every uniform single-kernel baseline.
 */

#include <gtest/gtest.h>

#include <bit>
#include <random>
#include <sstream>

#include "plan/planner.hh"
#include "telemetry/sonicz.hh"

namespace sonic
{
namespace
{

using plan::Objective;

/** A synthetic probe row scoring `score` under InferencesPerDay
 * (liveSeconds = one day makes the per-device value equal the
 * inference count). */
fleet::DeviceTelemetry
syntheticProbe(const std::string &net, kernels::Impl impl,
               const env::EnvRef &environment,
               const std::string &pipeline, u32 score)
{
    fleet::DeviceTelemetry t;
    t.assignment.net = net;
    t.assignment.impl = impl;
    t.assignment.environment = environment;
    t.assignment.pipeline = pipeline;
    t.inferencesCompleted = score;
    t.liveSeconds = 86400.0;
    return t;
}

fleet::FleetPlan
twoByTwoScenario()
{
    fleet::FleetPlan p;
    p.devices = 10;
    p.nets = {"MNIST", "HAR"};
    p.impls = {kernels::Impl::Sonic, kernels::Impl::Tails};
    p.environments = {{"solar", 1e-3}, {"rf-paper", 100e-6}};
    p.pipelines = {"infer-only"};
    p.maxInferencesPerDevice = 1;
    return p;
}

TEST(PlanObjective, RowAndScalarOverloadsAreBitIdentical)
{
    std::mt19937_64 rng(0x0b1);
    for (u32 i = 0; i < 200; ++i) {
        fleet::DeviceTelemetry t;
        t.inferencesCompleted = static_cast<u32>(rng() % 4);
        t.resultsDelivered = static_cast<u32>(rng() % 4);
        t.liveSeconds = static_cast<f64>(rng() % 100000) / 7.0;
        t.deadSeconds = static_cast<f64>(rng() % 100000) / 3.0;
        t.energyJ = static_cast<f64>(rng() % 1000) / 11.0;
        for (const auto objective :
             {Objective::DeliveredPerDay, Objective::InferencesPerDay,
              Objective::EnergyPerInference}) {
            const f64 via_row = plan::objectiveValue(objective, t);
            const f64 via_scalars = plan::objectiveValue(
                objective, t.inferencesCompleted, t.resultsDelivered,
                t.liveSeconds + t.deadSeconds, t.energyJ);
            EXPECT_EQ(std::bit_cast<u64>(via_row),
                      std::bit_cast<u64>(via_scalars));
        }
    }

    // A device that completes nothing must not look energy-efficient:
    // it is charged the fixed dead-device penalty instead of 0 J/inf.
    fleet::DeviceTelemetry dead;
    dead.energyJ = 0.0;
    EXPECT_EQ(plan::objectiveValue(Objective::EnergyPerInference, dead),
              -plan::kDeadDevicePenaltyJ);

    Objective parsed;
    for (const auto objective :
         {Objective::DeliveredPerDay, Objective::InferencesPerDay,
          Objective::EnergyPerInference}) {
        ASSERT_TRUE(plan::objectiveFromName(
            plan::objectiveName(objective), &parsed));
        EXPECT_EQ(parsed, objective);
    }
    EXPECT_FALSE(plan::objectiveFromName("no-such-objective", &parsed));
}

TEST(Planner, ArgmaxMatchesSyntheticCellsAndExhaustiveCheck)
{
    const plan::Scenario scenario{"", twoByTwoScenario()};
    const auto &envs = scenario.plan.environments;

    plan::PlanModel model(Objective::InferencesPerDay);
    const auto feed = [&](const std::string &net, kernels::Impl impl,
                          const env::EnvRef &env, u32 score) {
        // Two devices per cell: accumulation averages them.
        model.addProbe(
            syntheticProbe(net, impl, env, "infer-only", score));
        model.addProbe(
            syntheticProbe(net, impl, env, "infer-only", score));
    };
    feed("MNIST", kernels::Impl::Sonic, envs[0], 5); // SONIC wins
    feed("MNIST", kernels::Impl::Tails, envs[0], 3);
    feed("HAR", kernels::Impl::Sonic, envs[0], 2); // TAILS wins
    feed("HAR", kernels::Impl::Tails, envs[0], 7);
    feed("MNIST", kernels::Impl::Sonic, envs[1], 4); // tie -> first
    feed("MNIST", kernels::Impl::Tails, envs[1], 4);
    feed("HAR", kernels::Impl::Tails, envs[1], 1); // only TAILS has data

    plan::PlannerOptions options;
    options.objective = Objective::InferencesPerDay;
    options.probe = false;
    plan::Plan decided;
    plan::DecideInfo info;
    std::string error;
    ASSERT_TRUE(plan::decide(scenario, &model, options, &decided,
                             &info, &error))
        << error;
    EXPECT_TRUE(info.exhaustiveChecked); // 2^4 = 16 <= limit
    EXPECT_EQ(info.probeFleets, 0u);

    ASSERT_EQ(decided.choices.size(), 4u);
    // Choices are emitted in envLabels x nets x pipelines order.
    EXPECT_EQ(decided.choices[0].impl, "SONIC");
    EXPECT_EQ(decided.choices[0].score, 5.0);
    EXPECT_EQ(decided.choices[0].devicesObserved, 2u);
    EXPECT_TRUE(decided.choices[0].probed);
    EXPECT_EQ(decided.choices[1].impl, "TAILS");
    EXPECT_EQ(decided.choices[2].impl, "SONIC"); // tie-break: first
    EXPECT_EQ(decided.choices[3].impl, "TAILS"); // only candidate

    // A coordinate with no data under any kernel is a hard error
    // naming the hole, not a silent fallback.
    plan::PlanModel sparse(Objective::InferencesPerDay);
    sparse.addProbe(syntheticProbe("MNIST", kernels::Impl::Sonic,
                                   envs[0], "infer-only", 1));
    EXPECT_FALSE(plan::decide(scenario, &sparse, options, &decided,
                              &info, &error));
    EXPECT_NE(error.find("no data for coordinate"), std::string::npos);
}

TEST(Plan, JsonRoundTripIsExact)
{
    plan::Plan p;
    p.objective = Objective::EnergyPerInference;
    p.scenario = "unit";
    p.devices = 42;
    p.horizonSeconds = 86400.0;
    p.maxInferencesPerDevice = 3;
    p.profile = "standard";
    // > 2^53: survives only because the seed serializes as a string.
    p.baseSeed = 0xdeadbeefcafef00dull;
    p.nets = {"MNIST", "HAR"};
    p.impls = {"SONIC", "TAILS"};
    p.envLabels = {"solar@1mF", "rf-paper@100uF"};
    p.pipelines = {"infer-only"};
    u32 flip = 0;
    for (const auto &env : p.envLabels) {
        for (const auto &net : p.nets) {
            plan::PlanChoice choice;
            choice.envLabel = env;
            choice.net = net;
            choice.pipeline = "infer-only";
            choice.impl = p.impls[flip++ % 2];
            choice.score = -1.0 / 3.0; // needs round-trip precision
            choice.devicesObserved = flip;
            choice.probed = flip % 2 == 0;
            p.choices.push_back(std::move(choice));
        }
    }

    const std::string json = p.toJson();
    plan::Plan q;
    std::string error;
    ASSERT_TRUE(plan::Plan::fromJson(json, &q, &error)) << error;
    EXPECT_EQ(q.toJson(), json);
    EXPECT_EQ(q.baseSeed, p.baseSeed);
    EXPECT_EQ(q.objective, p.objective);
    EXPECT_EQ(q.choices.size(), p.choices.size());

    // Strictness: unknown format versions are rejected...
    std::string wrong_format = json;
    wrong_format.replace(wrong_format.find("sonic-plan-v1"), 13,
                         "sonic-plan-v9");
    EXPECT_FALSE(plan::Plan::fromJson(wrong_format, &q, &error));

    // ...as are plans that do not cover the coordinate cross product,
    plan::Plan missing = p;
    missing.choices.pop_back();
    EXPECT_FALSE(plan::Plan::fromJson(missing.toJson(), &q, &error));
    EXPECT_FALSE(error.empty());

    // duplicate coordinates,
    plan::Plan duplicated = p;
    duplicated.choices.back() = duplicated.choices.front();
    EXPECT_FALSE(plan::Plan::fromJson(duplicated.toJson(), &q, &error));

    // and choices naming a kernel outside the candidate list.
    plan::Plan foreign = p;
    foreign.choices[0].impl = "no-such-kernel";
    EXPECT_FALSE(plan::Plan::fromJson(foreign.toJson(), &q, &error));
}

TEST(Plan, FleetPlanHonorsChoicesAndPreservesDeals)
{
    fleet::FleetPlan base = twoByTwoScenario();
    const plan::Scenario scenario{"", base};
    plan::PlanModel model(Objective::InferencesPerDay);
    plan::PlannerOptions options;
    options.objective = Objective::InferencesPerDay;
    options.probeDevices = 0; // full population: exact cells
    plan::Plan decided;
    std::string error;
    ASSERT_TRUE(plan::decide(scenario, &model, options, &decided,
                             nullptr, &error))
        << error;

    const fleet::FleetPlan planned = decided.toFleetPlan();
    ASSERT_EQ(planned.implByCoordinate.size(),
              decided.choices.size());
    for (u32 i = 0; i < base.devices; ++i) {
        const auto dealt = base.assignmentFor(i);
        const auto assigned = planned.assignmentFor(i);
        // Only the kernel lane may differ: same model, environment,
        // pipeline, and seed, so fleets are device-for-device
        // comparable.
        EXPECT_EQ(assigned.net, dealt.net);
        EXPECT_EQ(assigned.environment.label(),
                  dealt.environment.label());
        EXPECT_EQ(assigned.pipeline, dealt.pipeline);
        EXPECT_EQ(assigned.seed, dealt.seed);
        const auto key = fleet::FleetPlan::coordinateKey(
            dealt.environment.label(), dealt.net, dealt.pipeline);
        const auto it = planned.implByCoordinate.find(key);
        ASSERT_NE(it, planned.implByCoordinate.end());
        EXPECT_EQ(assigned.impl, it->second);
    }

    // A baseline fleet is the same deployment pinned to one kernel.
    const auto baseline = decided.toBaselineFleetPlan("TAILS");
    EXPECT_TRUE(baseline.implByCoordinate.empty());
    for (u32 i = 0; i < base.devices; ++i)
        EXPECT_EQ(baseline.assignmentFor(i).impl,
                  kernels::Impl::Tails);

    // The plan-aware sweep covers exactly the axes the choices use.
    const auto sweep = decided.toSweepPlan();
    EXPECT_GT(sweep.size(), 0u);
}

TEST(FleetPlan, ValidateRejectsBrokenPlannedAssignments)
{
    fleet::FleetPlan p = twoByTwoScenario();
    const auto key = [&](u64 env, const char *net) {
        return fleet::FleetPlan::coordinateKey(
            p.environments[env].label(), net, "infer-only");
    };

    fleet::FleetPlan partial = p;
    partial.implByCoordinate[key(0, "MNIST")] = kernels::Impl::Sonic;
    EXPECT_DEATH(partial.validate(), "covers no coordinate");

    fleet::FleetPlan stale = p;
    for (u64 e = 0; e < 2; ++e)
        for (const char *net : {"MNIST", "HAR"})
            stale.implByCoordinate[key(e, net)] = kernels::Impl::Sonic;
    stale.implByCoordinate["mars@1F/LeNet/none"] =
        kernels::Impl::Sonic;
    EXPECT_DEATH(stale.validate(), "no device can land on");

    fleet::FleetPlan foreign = p;
    foreign.impls = {kernels::Impl::Sonic};
    for (u64 e = 0; e < 2; ++e)
        for (const char *net : {"MNIST", "HAR"})
            foreign.implByCoordinate[key(e, net)] =
                kernels::Impl::Tails;
    EXPECT_DEATH(foreign.validate(), "outside the plan's impl");
}

TEST(Planner, DecisionIsDeterministicAcrossThreadCounts)
{
    fleet::FleetPlan base = twoByTwoScenario();
    base.devices = 16;
    const plan::Scenario scenario{"", base};

    const auto decide_with = [&](u32 threads) {
        plan::PlanModel model(Objective::InferencesPerDay);
        plan::PlannerOptions options;
        options.objective = Objective::InferencesPerDay;
        options.probeDevices = 0;
        options.fleet.threads = threads;
        plan::Plan decided;
        std::string error;
        EXPECT_TRUE(plan::decide(scenario, &model, options, &decided,
                                 nullptr, &error))
            << error;
        return decided.toJson();
    };
    const std::string one = decide_with(1);
    EXPECT_EQ(decide_with(4), one);
    EXPECT_EQ(decide_with(1), one);
}

TEST(Planner, PlanTiesOrBeatsEveryUniformBaseline)
{
    // The acceptance property, at test scale: with uncapped probes the
    // cell estimates are the exact per-coordinate populations, so the
    // confirming run CANNOT lose to a uniform baseline (the plan mean
    // is the sum of per-coordinate maxima).
    fleet::FleetPlan base;
    base.devices = 24;
    base.nets = {"MNIST", "HAR"};
    base.impls = {kernels::Impl::Sonic, kernels::Impl::Tails};
    base.environments = {{"solar", 1e-3}, {"rf-paper", 100e-6}};
    base.pipelines = {"wildlife"};
    base.maxInferencesPerDevice = 1;
    const plan::Scenario scenario{"", base};

    plan::PlanModel model(Objective::InferencesPerDay);
    plan::PlannerOptions options;
    options.objective = Objective::InferencesPerDay;
    options.probeDevices = 0;
    plan::Plan decided;
    plan::DecideInfo info;
    std::string error;
    ASSERT_TRUE(plan::decide(scenario, &model, options, &decided,
                             &info, &error))
        << error;
    EXPECT_EQ(info.probeFleets, 2u);

    const auto result = plan::confirm(decided, options.fleet);
    EXPECT_TRUE(result.planWins);
    ASSERT_EQ(result.baselines.size(), 2u);
    for (const auto &baseline : result.baselines)
        EXPECT_GE(result.planObjective, baseline.objective)
            << "loses to all-" << baseline.impl;

    // The confirming summary is a fleet summary: byte-identical
    // across thread counts.
    fleet::FleetOptions threaded = options.fleet;
    threaded.threads = 3;
    const auto re_confirmed = plan::confirm(decided, threaded);
    EXPECT_EQ(re_confirmed.planSummaryJson, result.planSummaryJson);
    EXPECT_EQ(std::bit_cast<u64>(re_confirmed.planObjective),
              std::bit_cast<u64>(result.planObjective));
}

TEST(Planner, IngestedTelemetryFeedsTheModel)
{
    // Round trip through the real pipeline: run the scenario fleet to
    // .sonicz, ingest it, decide WITHOUT probes. Hash-dealt telemetry
    // covers each (coordinate, kernel) cell with a disjoint device
    // subset, so every cell needs at least one device to land on it —
    // 64 devices over 8 cells makes that hold for this seed.
    fleet::FleetPlan base = twoByTwoScenario();
    base.devices = 64;
    const plan::Scenario scenario{"", base};

    std::ostringstream os;
    telemetry::SoniczFleetSink sink(os);
    fleet::runFleet(base, {}, {&sink});

    plan::PlanModel model(Objective::InferencesPerDay);
    std::istringstream in(os.str());
    std::string error;
    ASSERT_TRUE(model.ingestSonicz(in, &error)) << error;
    EXPECT_EQ(model.rowsIngested(), base.devices);

    plan::PlannerOptions options;
    options.objective = Objective::InferencesPerDay;
    options.probe = false;
    plan::Plan decided;
    ASSERT_TRUE(plan::decide(scenario, &model, options, &decided,
                             nullptr, &error))
        << error;
    EXPECT_EQ(decided.choices.size(), 4u);
    for (const auto &choice : decided.choices) {
        EXPECT_FALSE(choice.probed);
        EXPECT_GT(choice.devicesObserved, 0u);
    }
}

} // namespace
} // namespace sonic
