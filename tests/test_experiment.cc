/**
 * @file
 * Tests for the experiment vocabulary, the engine's single-shot path,
 * and the application model (wildlife case study, offload comparison).
 */

#include <gtest/gtest.h>

#include "app/engine.hh"
#include "app/wildlife.hh"
#include "tests/test_helpers.hh"

namespace sonic::app
{
namespace
{

Engine &
engine()
{
    static Engine instance;
    return instance;
}

TEST(Experiment, PowerNames)
{
    EXPECT_STREQ(powerName(PowerKind::Continuous), "Continuous");
    EXPECT_STREQ(powerName(PowerKind::Cap100uF), "100uF");
}

TEST(Experiment, ProfileNames)
{
    EXPECT_STREQ(profileName(ProfileVariant::Standard), "standard");
    EXPECT_STREQ(profileName(ProfileVariant::NoLea), "no-lea");
    EXPECT_STREQ(profileName(ProfileVariant::NoDma), "no-dma");
}

TEST(Experiment, MakePowerKinds)
{
    EXPECT_FALSE(makePower(PowerKind::Continuous)->intermittent());
    const auto cap = makePower(PowerKind::Cap1mF);
    EXPECT_TRUE(cap->intermittent());
    EXPECT_GT(cap->capacityNj(), 0.0);
}

TEST(Experiment, EngineCachesAreStable)
{
    const auto &a = engine().compressed("HAR");
    const auto &b = engine().compressed("HAR");
    EXPECT_EQ(&a, &b);
    const auto &t = engine().teacher("HAR");
    EXPECT_EQ(&t, &engine().teacher("HAR"));
    EXPECT_EQ(engine().dataset("HAR").size(), 64u);
}

TEST(Experiment, BreakdownSumsToLiveTime)
{
    // TAILS included: its batched LEA shifts are the origin of the
    // documented reassociation drift (see kBatchedEnergyRelTol).
    for (const auto impl : {kernels::Impl::Sonic,
                            kernels::Impl::Tails}) {
        RunSpec spec;
        spec.net = "HAR";
        spec.impl = impl;
        const auto r = engine().runOne(spec);
        ASSERT_TRUE(r.completed);
        f64 sum = 0.0;
        for (const auto &layer : r.layers)
            sum += layer.kernelSeconds + layer.controlSeconds;
        EXPECT_NEAR(sum, r.liveSeconds,
                    r.liveSeconds * testutil::kBatchedEnergyRelTol);
    }
}

TEST(Experiment, EnergyByOpSumsToTotal)
{
    for (const auto impl : {kernels::Impl::Sonic,
                            kernels::Impl::Tails}) {
        RunSpec spec;
        spec.net = "HAR";
        spec.impl = impl;
        const auto r = engine().runOne(spec);
        f64 sum = 0.0;
        for (const auto &[op, joules] : r.energyByOp)
            sum += joules;
        EXPECT_NEAR(sum, r.energyJ,
                    r.energyJ * testutil::kBatchedEnergyRelTol);
    }
}

TEST(Experiment, ContinuousHasNoDeadTime)
{
    RunSpec spec;
    spec.net = "HAR";
    spec.impl = kernels::Impl::Base;
    const auto r = engine().runOne(spec);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.deadSeconds, 0.0);
    EXPECT_EQ(r.reboots, 0u);
}

TEST(Experiment, SampleIndexChangesInput)
{
    RunSpec a;
    a.net = "HAR";
    a.impl = kernels::Impl::Sonic;
    a.sampleIndex = 0;
    RunSpec b = a;
    b.sampleIndex = 1;
    const auto ra = engine().runOne(a);
    const auto rb = engine().runOne(b);
    EXPECT_NE(ra.logits, rb.logits);
}

TEST(Experiment, AblationProfilesChangeTailsCost)
{
    RunSpec spec;
    spec.net = "HAR";
    spec.impl = kernels::Impl::Tails;
    spec.profile = ProfileVariant::Standard;
    const auto with_hw = engine().runOne(spec);
    spec.profile = ProfileVariant::NoLea;
    const auto no_lea = engine().runOne(spec);
    EXPECT_GT(no_lea.liveSeconds, with_hw.liveSeconds);
}

TEST(Experiment, TailsRunReportsCalibratedTile)
{
    RunSpec spec;
    spec.net = "HAR";
    spec.impl = kernels::Impl::Tails;
    const auto r = engine().runOne(spec);
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.tailsTileWords, 0u);

    spec.impl = kernels::Impl::Sonic;
    EXPECT_EQ(engine().runOne(spec).tailsTileWords, 0u);
}

TEST(Wildlife, SweepShapes)
{
    WildlifeParams params;
    const auto rows = sweepWildlife(params, 5, false);
    ASSERT_EQ(rows.size(), 5u);
    EXPECT_EQ(rows.front().accuracy, 0.0);
    EXPECT_EQ(rows.back().accuracy, 1.0);
    // Always-send is flat; filtered systems grow with accuracy.
    EXPECT_NEAR(rows.front().alwaysSend, rows.back().alwaysSend, 1e-12);
    EXPECT_GT(rows.back().sonicTails, rows.front().sonicTails);
}

TEST(Wildlife, FullImageCalloutsMatchPaperShape)
{
    WildlifeParams params; // the paper's measured defaults
    const auto rows = sweepWildlife(params, 11, false);
    const auto &top = rows.back();
    const f64 gain = top.sonicTails / top.alwaysSend;
    EXPECT_GT(gain, 10.0);
    EXPECT_LT(gain, 25.0); // paper: ~20x
    const f64 vs_naive = top.sonicTails / top.naive;
    EXPECT_GT(vs_naive, 1.0);
    EXPECT_LT(vs_naive, 1.3); // paper: up to 14%, ~1.1x at the top
}

TEST(Wildlife, SendResultCalloutsMatchPaperShape)
{
    WildlifeParams params;
    const auto rows = sweepWildlife(params, 11, true);
    const auto &top = rows.back();
    EXPECT_GT(top.sonicTails / top.alwaysSend, 200.0); // paper ~480x
    EXPECT_GT(top.sonicTails / top.naive, 2.0);        // paper ~4.6x
    EXPECT_LT(top.ideal / top.sonicTails, 4.0);        // paper ~2.2x
}

TEST(Wildlife, OffloadComparisonHuge)
{
    const auto cmp = offloadVsLocal(28 * 28, 26e-3, kHarvestWatts);
    EXPECT_GT(cmp.speedup, 300.0); // paper: >=360x
    EXPECT_GT(cmp.offloadSeconds, 3600.0); // over an hour
}

} // namespace
} // namespace sonic::app
