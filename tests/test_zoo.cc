/**
 * @file
 * Tests for the model zoo and the declarative NetworkBuilder: registry
 * semantics (lazy caching, registration order, duplicate/unknown
 * names), builder shape propagation and fusion, the synthetic model
 * families, generic knob compression, and the unknown-model error
 * paths in SweepPlan and Engine.
 */

#include <gtest/gtest.h>

#include "app/engine.hh"
#include "dnn/builder.hh"
#include "dnn/zoo.hh"

namespace sonic::dnn
{
namespace
{

TEST(ModelZoo, BuiltinsAreRegisteredInOrder)
{
    auto &zoo = ModelZoo::instance();
    const auto names = zoo.names();
    ASSERT_GE(names.size(), 7u);
    // The paper trio leads, then the verify workload, then the
    // builder-generated synthetic families.
    EXPECT_EQ(names[0], "MNIST");
    EXPECT_EQ(names[1], "HAR");
    EXPECT_EQ(names[2], "OkG");
    EXPECT_EQ(names[3], "golden");
    EXPECT_TRUE(zoo.contains("DeepFC-6"));
    EXPECT_TRUE(zoo.contains("WideFC-512"));
    EXPECT_TRUE(zoo.contains("DWConv-3"));
    EXPECT_FALSE(zoo.contains("no-such-model"));
    EXPECT_EQ(zoo.find("no-such-model"), nullptr);
}

TEST(ModelZoo, EntriesAreCachedAndStable)
{
    auto &zoo = ModelZoo::instance();
    const ModelEntry *a = zoo.find("HAR");
    const ModelEntry *b = zoo.find("HAR");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a, b);
    EXPECT_EQ(&a->teacher(), &b->teacher());
    EXPECT_EQ(&a->dataset(), &b->dataset());
    EXPECT_EQ(a->dataset().size(), a->meta().datasetSamples);
}

TEST(ModelZoo, PaperMetadataMatchesTable2)
{
    auto &zoo = ModelZoo::instance();
    EXPECT_DOUBLE_EQ(zoo.get("MNIST").meta().paperAccuracy, 0.99);
    EXPECT_DOUBLE_EQ(zoo.get("HAR").meta().paperAccuracy, 0.88);
    EXPECT_DOUBLE_EQ(zoo.get("OkG").meta().paperAccuracy, 0.84);
    EXPECT_EQ(zoo.get("MNIST").meta().family, "paper");
    EXPECT_EQ(zoo.get("golden").meta().family, "verify");
    EXPECT_EQ(zoo.get("DeepFC-6").meta().family, "synthetic");
    EXPECT_DOUBLE_EQ(zoo.get("HAR").meta().scaledAccuracy(0.5),
                     0.44);
}

TEST(ModelZoo, AddRegistersACustomModelSweepableByName)
{
    auto &zoo = ModelZoo::instance();
    // Process-global registry: stay idempotent under --gtest_repeat.
    if (!zoo.contains("test-custom")) {
        ModelMeta meta;
        meta.family = "custom";
        zoo.add("test-custom", meta,
                deepFcNet("test-custom", 16, 2, 8, 4));
    }
    const auto &entry = zoo.get("test-custom");
    EXPECT_EQ(entry.teacher().numClasses, 4u);
    // teacher == compressed for fixed registered networks.
    EXPECT_EQ(entry.compressed().paramCount(),
              entry.teacher().paramCount());

    // Sweepable through the engine with zero engine edits.
    app::SweepPlan plan;
    plan.nets({"test-custom"}).impls({kernels::Impl::Sonic});
    app::Engine engine(app::EngineOptions{1});
    const auto records = engine.run(plan);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_TRUE(records[0].result.completed);
    EXPECT_EQ(records[0].spec.net, "test-custom");
}

TEST(ModelZoo, DatasetBuilderReplacesTheSyntheticDefault)
{
    auto &zoo = ModelZoo::instance();
    // A model shipping its own eval inputs (the dataset plug-in
    // point): three constant-ramp samples with fixed labels instead
    // of the synthetic teacher-labelled noise.
    if (!zoo.contains("test-own-dataset")) {
        ModelMeta meta;
        meta.family = "custom";
        meta.datasetSamples = 64; // ignored by the custom builder
        zoo.add("test-own-dataset", meta, [] {
            ModelDef def;
            def.teacher = deepFcNet("test-own-dataset", 16, 2, 8, 4);
            def.dataset = [](const NetworkSpec &teacher,
                             const ModelMeta &) {
                Dataset data;
                for (u32 s = 0; s < 3; ++s) {
                    Sample sample;
                    sample.input = tensor::FeatureMap(
                        teacher.input.c, teacher.input.h,
                        teacher.input.w);
                    for (u64 i = 0; i < sample.input.data.size(); ++i)
                        sample.input.data[i] =
                            0.01 * static_cast<f64>(i + s);
                    sample.label = s % teacher.numClasses;
                    data.push_back(std::move(sample));
                }
                return data;
            };
            return def;
        });
    }
    const auto &entry = zoo.get("test-own-dataset");
    ASSERT_EQ(entry.dataset().size(), 3u); // not meta.datasetSamples
    EXPECT_EQ(entry.dataset()[1].label, 1u);
    EXPECT_EQ(entry.dataset()[0].input.data[2], 0.02);

    // The engine consumes the custom samples like any dataset.
    app::SweepPlan plan;
    plan.nets({"test-own-dataset"})
        .impls({kernels::Impl::Sonic})
        .samples(3);
    app::Engine engine(app::EngineOptions{1});
    const auto records = engine.run(plan);
    ASSERT_EQ(records.size(), 3u);
    for (const auto &record : records)
        EXPECT_TRUE(record.result.completed);
}

TEST(ModelZoo, SyntheticModelsRunOnEveryPaperKernel)
{
    app::SweepPlan plan;
    plan.nets({"DeepFC-6", "WideFC-512", "DWConv-3"}).allImpls();
    app::Engine engine;
    const auto records = engine.run(plan);
    ASSERT_EQ(records.size(), 3u * 6u);
    for (const auto &record : records)
        EXPECT_TRUE(record.result.completed)
            << record.spec.net << "/"
            << kernels::implName(record.spec.impl);
}

TEST(ModelZoo, UnknownNameInSweepPlanDies)
{
    EXPECT_EXIT(
        {
            app::SweepPlan plan;
            plan.nets({"HAR", "definitely-not-registered"});
        },
        ::testing::ExitedWithCode(1), "definitely-not-registered");
}

TEST(ModelZoo, UnknownNameInEngineDies)
{
    EXPECT_EXIT(
        {
            app::Engine engine;
            app::RunSpec spec;
            spec.net = "definitely-not-registered";
            engine.runOne(spec);
        },
        ::testing::ExitedWithCode(1), "registered models");
}

TEST(ModelZoo, GenericKnobCompressionShrinksSyntheticTeachers)
{
    const auto &entry = ModelZoo::instance().get("DeepFC-6");
    CompressionKnobs lean;
    lean.fcKeep = 0.5;
    const auto compressed = entry.withKnobs(lean, 0x5eed);
    EXPECT_LT(compressed.paramCount(), entry.teacher().paramCount());
    EXPECT_EQ(compressed.numClasses, entry.teacher().numClasses);
}

TEST(Builder, TracksShapesThroughConvPoolAndFc)
{
    NetworkBuilder b("shapes", {1, 12, 12});
    b.factoredConv("conv1", 4, 3, 3).relu().pool();
    // (12-3+1) = 10 -> pool -> 5; 4 channels.
    EXPECT_EQ(b.currentShape().c, 4u);
    EXPECT_EQ(b.currentShape().h, 5u);
    EXPECT_EQ(b.currentShape().w, 5u);
    b.sparseFc("fc", 16, 0.5).relu().fc("out", 6);
    const auto net = b.build();
    EXPECT_EQ(net.numClasses, 6u);
    ASSERT_EQ(net.layers.size(), 3u);
    EXPECT_TRUE(net.layers[0].reluAfter);
    EXPECT_TRUE(net.layers[0].poolAfter);
    EXPECT_TRUE(net.layers[1].reluAfter);
    EXPECT_FALSE(net.layers[2].reluAfter);
    EXPECT_EQ(net.shapeAfter(2).elems(), 6u);
}

TEST(Builder, SyntheticWeightsAreDeterministicDyadics)
{
    const auto a = deepFcNet("det", 16, 3, 8, 4, 99);
    const auto b = deepFcNet("det", 16, 3, 8, 4, 99);
    const auto c = deepFcNet("det", 16, 3, 8, 4, 100);
    const auto *fa = std::get_if<DenseFcLayer>(&a.layers[0].op);
    const auto *fb = std::get_if<DenseFcLayer>(&b.layers[0].op);
    const auto *fc = std::get_if<DenseFcLayer>(&c.layers[0].op);
    ASSERT_NE(fa, nullptr);
    EXPECT_EQ(fa->weights.data(), fb->weights.data());
    EXPECT_NE(fa->weights.data(), fc->weights.data());
    // Every weight sits on a dyadic grid: scaling by 4096 yields an
    // integer exactly (the platform-stability property).
    for (f64 w : fa->weights.data()) {
        const f64 scaled = w * 4096.0;
        EXPECT_EQ(scaled, static_cast<f64>(static_cast<i64>(scaled)));
    }
}

TEST(Builder, FamiliesProduceRunnableDeviceNets)
{
    // One-liner families must lower and classify on the host.
    const auto wide = wideFcNet("w", 24, 64, 0.25, 5);
    EXPECT_EQ(wide.numClasses, 5u);
    const auto dw = depthwiseConvNet("d", 2, 10, 2, 3);
    EXPECT_EQ(dw.numClasses, 3u);
    tensor::FeatureMap in(2, 10, 10);
    in.data[3] = 0.5;
    EXPECT_LT(dw.classify(in), 3u);
}

TEST(Builder, ExplicitWeightsAndValidation)
{
    tensor::Matrix w(3, 16);
    w.at(0, 0) = 1.0;
    const auto net = NetworkBuilder("explicit", {1, 4, 4})
                         .fc("fc", std::move(w))
                         .build();
    EXPECT_EQ(net.numClasses, 3u);

    // A mis-sized explicit FC is a fatal configuration error.
    EXPECT_DEATH(
        {
            tensor::Matrix bad(3, 7);
            NetworkBuilder("bad", {1, 4, 4}).fc("fc", std::move(bad));
        },
        "expects");
}

} // namespace
} // namespace sonic::dnn
