/**
 * @file
 * Tests for GENESIS: the Eq. 1-3 application model, the compression
 * sweep, Pareto frontiers, feasibility filtering, and the headline
 * claim that the IMpJ-optimal configuration maximizes the model.
 */

#include <gtest/gtest.h>

#include "genesis/genesis.hh"
#include "genesis/impj.hh"

namespace sonic::genesis
{
namespace
{

AppModel
wildlife()
{
    AppModel m;
    m.baseRate = 0.05;
    m.senseJ = 10e-3;
    m.commJ = 23.0;
    m.inferJ = 26e-3;
    m.truePositive = 0.99;
    m.trueNegative = 0.99;
    return m;
}

TEST(Impj, BaselineMatchesHandComputation)
{
    const auto m = wildlife();
    EXPECT_NEAR(impjBaseline(m), 0.05 / (0.010 + 23.0), 1e-12);
}

TEST(Impj, IdealMatchesHandComputation)
{
    const auto m = wildlife();
    EXPECT_NEAR(impjIdeal(m), 0.05 / (0.010 + 0.05 * 23.0), 1e-12);
}

TEST(Impj, InferenceMatchesEq3)
{
    const auto m = wildlife();
    const f64 sent = 0.05 * 0.99 + 0.95 * 0.01;
    const f64 expect =
        (0.05 * 0.99) / ((0.010 + 0.026) + sent * 23.0);
    EXPECT_NEAR(impjInference(m), expect, 1e-12);
}

TEST(Impj, PerfectInferenceApproachesIdeal)
{
    auto m = wildlife();
    m.truePositive = 1.0;
    m.trueNegative = 1.0;
    m.inferJ = 0.0;
    EXPECT_NEAR(impjInference(m), impjIdeal(m), 1e-12);
}

TEST(Impj, OrderingBaselineInferenceIdeal)
{
    const auto m = wildlife();
    EXPECT_LT(impjBaseline(m), impjInference(m));
    EXPECT_LT(impjInference(m), impjIdeal(m));
}

TEST(Impj, MonotoneInAccuracy)
{
    auto m = wildlife();
    f64 prev = 0.0;
    for (f64 acc = 0.1; acc <= 1.0; acc += 0.1) {
        m.truePositive = acc;
        m.trueNegative = acc;
        const f64 v = impjInference(m);
        EXPECT_GT(v, prev);
        prev = v;
    }
}

TEST(Impj, MonotoneDecreasingInInferenceEnergy)
{
    auto m = wildlife();
    f64 prev = 1e18;
    for (f64 e = 0.0; e <= 0.5; e += 0.05) {
        m.inferJ = e;
        const f64 v = impjInference(m);
        EXPECT_LT(v, prev);
        prev = v;
    }
}

TEST(Impj, LowTrueNegativeHurtsWhenCommIsExpensive)
{
    auto m = wildlife();
    m.trueNegative = 0.5; // floods the radio with false positives
    const f64 low_tn = impjInference(m);
    m.trueNegative = 0.99;
    EXPECT_GT(impjInference(m), 3.0 * low_tn);
}

class GenesisSweep : public ::testing::Test
{
  protected:
    static const GenesisResult &
    result()
    {
        static GenesisResult r = [] {
            GenesisOptions opts;
            opts.denseGrid = false;
            opts.evalSamples = 32;
            return runGenesis("HAR", opts);
        }();
        return r;
    }
};

TEST_F(GenesisSweep, OriginalIsInfeasible)
{
    EXPECT_FALSE(result().original.feasible);
    EXPECT_GT(result().original.framBytes, u64{256} * 1024);
}

TEST_F(GenesisSweep, ChosenIsFeasible)
{
    EXPECT_TRUE(result().chosen().feasible);
}

TEST_F(GenesisSweep, ChosenMaximizesImpjAmongFeasible)
{
    for (const auto &c : result().configs) {
        if (c.feasible)
            EXPECT_LE(c.impj, result().chosen().impj + 1e-12);
    }
}

TEST_F(GenesisSweep, AccuracyDegradesWithAggressivePruning)
{
    // Among separate+prune configs with identical rank, the smallest
    // keep-fraction must not beat the largest by much.
    f64 min_keep = 1e9, max_keep = -1e9;
    f64 acc_min = 0, acc_max = 0;
    for (const auto &c : result().configs) {
        if (c.technique != Technique::SeparateAndPrune)
            continue;
        if (c.knobs.fcKeep < min_keep) {
            min_keep = c.knobs.fcKeep;
            acc_min = c.accuracy;
        }
        if (c.knobs.fcKeep > max_keep) {
            max_keep = c.knobs.fcKeep;
            acc_max = c.accuracy;
        }
    }
    EXPECT_LT(min_keep, max_keep);
    EXPECT_LE(acc_min, acc_max + 0.05);
}

TEST_F(GenesisSweep, CompressionReducesCost)
{
    for (const auto &c : result().configs) {
        EXPECT_LT(c.macs, result().original.macs);
        EXPECT_LT(c.params, result().original.params);
    }
}

TEST_F(GenesisSweep, ParetoFrontierUndominated)
{
    const auto &configs = result().configs;
    const auto front = paretoFrontier(configs, nullptr);
    ASSERT_FALSE(front.empty());
    for (u32 i : front) {
        for (u32 j = 0; j < configs.size(); ++j) {
            if (j == i)
                continue;
            const bool dominates = configs[j].macs < configs[i].macs
                && configs[j].accuracy > configs[i].accuracy;
            EXPECT_FALSE(dominates)
                << "config " << j << " dominates frontier member "
                << i;
        }
    }
}

TEST_F(GenesisSweep, ParetoSortedByMacs)
{
    const auto front = paretoFrontier(result().configs, nullptr);
    for (u32 k = 1; k < front.size(); ++k)
        EXPECT_LE(result().configs[front[k - 1]].macs,
                  result().configs[front[k]].macs);
}

TEST_F(GenesisSweep, TechniqueFilterRestricts)
{
    const Technique prune = Technique::PruneOnly;
    const auto front = paretoFrontier(result().configs, &prune);
    for (u32 i : front)
        EXPECT_EQ(result().configs[i].technique, Technique::PruneOnly);
}

TEST(Genesis, SweepsAnyZooModelThroughGenericCompression)
{
    // Non-paper models have no Table 2 budgets: GENESIS falls back to
    // the generic knob compressor via the zoo entry with zero edits
    // here or in genesis.cc.
    GenesisOptions opts;
    opts.denseGrid = false;
    opts.evalSamples = 16;
    const auto r = runGenesis("DeepFC-6", opts);
    EXPECT_EQ(r.net, "DeepFC-6");
    EXPECT_FALSE(r.configs.empty());
    EXPECT_TRUE(r.chosen().feasible);
    // Synthetic teachers are device-feasible, so the original is too.
    EXPECT_TRUE(r.original.feasible);
    EXPECT_DOUBLE_EQ(r.original.accuracy, 1.0); // no paper baseline
    // Separated/pruned configs really shrink the network.
    EXPECT_LT(r.chosen().params, r.original.params);
}

TEST(Genesis, TechniqueNames)
{
    EXPECT_STREQ(techniqueName(Technique::SeparateAndPrune),
                 "separate+prune");
    EXPECT_STREQ(techniqueName(Technique::PruneOnly), "prune-only");
}

TEST(Genesis, EinferScalesWithMacs)
{
    GenesisOptions opts;
    opts.denseGrid = false;
    opts.evalSamples = 16;
    const auto r = runGenesis("HAR", opts);
    for (const auto &c : r.configs)
        EXPECT_NEAR(c.inferJ,
                    static_cast<f64>(c.macs) * opts.joulesPerMac,
                    1e-12);
}

} // namespace
} // namespace sonic::genesis
