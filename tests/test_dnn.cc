/**
 * @file
 * Tests for the DNN layer: spec shape/count arithmetic, the three
 * Table-2 workloads, synthetic datasets, and device lowering
 * (quantization, sparse formats, buffer schedule).
 */

#include <gtest/gtest.h>

#include "arch/memory.hh"
#include "dnn/dataset.hh"
#include "dnn/device_net.hh"
#include "dnn/zoo.hh"
#include "fixed/fixed.hh"
#include "tests/test_helpers.hh"

namespace sonic::dnn
{
namespace
{

/** The zoo-cached entry for a registered model. */
const ModelEntry &
zooModel(const char *name)
{
    return ModelZoo::instance().get(name);
}

arch::Device
continuousDevice()
{
    return arch::Device(arch::EnergyProfile::msp430fr5994(),
                        std::make_unique<arch::ContinuousPower>());
}

TEST(Spec, TinyNetShapes)
{
    const auto net = testutil::tinyNet();
    EXPECT_EQ(net.shapeAfter(0).elems(), 2u * 3 * 3);
    EXPECT_EQ(net.shapeAfter(1).elems(), 3u * 2 * 2);
    EXPECT_EQ(net.shapeAfter(2).elems(), 6u);
    EXPECT_EQ(net.shapeAfter(3).elems(), 4u);
}

TEST(Spec, TinyNetForwardMatchesManualPipeline)
{
    const auto net = testutil::tinyNet();
    Rng rng(1);
    tensor::FeatureMap in(1, 8, 8);
    for (auto &v : in.data)
        v = rng.uniform(-1.0, 1.0);

    // Manual: col, row, scale, relu, pool.
    const auto *f = std::get_if<FactoredConvLayer>(&net.layers[0].op);
    ASSERT_NE(f, nullptr);
    auto x = tensor::convCols(in, f->col);
    x = tensor::convRows(x, f->row);
    x = tensor::channelScale(x, f->scale);
    x = tensor::relu(x);
    x = tensor::maxPool2x2(x);

    const auto *s = std::get_if<SparseConvLayer>(&net.layers[1].op);
    x = tensor::relu(tensor::conv2dValid(x, s->filters));

    const auto *sf = std::get_if<SparseFcLayer>(&net.layers[2].op);
    auto v = tensor::relu(sf->weights.matvec(tensor::flatten(x)));
    const auto *df = std::get_if<DenseFcLayer>(&net.layers[3].op);
    const auto logits = df->weights.matvec(v);

    const auto got = net.forward(in);
    ASSERT_EQ(got.size(), logits.size());
    for (u32 i = 0; i < logits.size(); ++i)
        EXPECT_NEAR(got[i], logits[i], 1e-10);
}

TEST(Spec, MacAndParamCountsTiny)
{
    const auto net = testutil::tinyNet();
    // col: 3 taps x (6x8); row: 3 x (6x6); scale: 2 x 36;
    // conv2: nnz x 4 positions; sfc nnz; dfc 24.
    const auto *s = std::get_if<SparseConvLayer>(&net.layers[1].op);
    const auto *sf = std::get_if<SparseFcLayer>(&net.layers[2].op);
    const u64 expected_macs = 3 * 48 + 3 * 36 + 2 * 36
        + s->filters.nonZeroCount() * 4 + sf->weights.nonZeroCount()
        + 24;
    EXPECT_EQ(net.macCount(), expected_macs);
    EXPECT_EQ(net.paramCount(),
              3 + 3 + 2 + s->filters.nonZeroCount()
                  + sf->weights.nonZeroCount() + 24);
}

TEST(Networks, TeacherShapesMatchTable2)
{
    const auto &mnist = zooModel("MNIST").teacher();
    EXPECT_EQ(mnist.numClasses, 10u);
    EXPECT_EQ(mnist.shapeAfter(0).elems(), 20u * 12 * 12);
    EXPECT_EQ(mnist.shapeAfter(1).elems(), 100u * 4 * 4);
    EXPECT_EQ(mnist.paramCount(),
              u64{500} + 50000 + 200 * 1600 + 500 * 200 + 10 * 500);

    const auto &har = zooModel("HAR").teacher();
    EXPECT_EQ(har.numClasses, 6u);
    EXPECT_EQ(har.shapeAfter(0).elems(), 2450u);

    const auto &okg = zooModel("OkG").teacher();
    EXPECT_EQ(okg.numClasses, 12u);
    EXPECT_EQ(okg.shapeAfter(0).elems(), 1674u);
}

TEST(Networks, TeachersAreInfeasibleOnDevice)
{
    for (const auto &name : kPaperNets) {
        const auto &teacher = zooModel(name.c_str()).teacher();
        EXPECT_GT(teacher.framBytesNeeded(), u64{256} * 1024) << name;
    }
}

TEST(Networks, CompressedConfigsFitOnDevice)
{
    for (const auto &name : kPaperNets) {
        const auto &entry = zooModel(name.c_str());
        const auto &net = entry.compressed();
        EXPECT_LT(net.framBytesNeeded(), u64{224} * 1024) << name;
        EXPECT_LT(net.paramCount(),
                  entry.teacher().paramCount() / 10)
            << name;
    }
}

TEST(Networks, CompressedMnistMatchesTable2Budgets)
{
    const auto &net = zooModel("MNIST").compressed();
    const auto rows = accountLayers(net);
    // conv2 pruned to ~1253 (13 per output channel balanced).
    u64 conv2_params = 0;
    for (const auto &row : rows)
        if (row.name == "conv2")
            conv2_params += row.params;
    EXPECT_NEAR(static_cast<f64>(conv2_params), 1300.0, 64.0);
}

TEST(Networks, DeterministicConstruction)
{
    // withKnobs at default knobs is the compressed build at that seed.
    const auto a = zooModel("HAR").withKnobs(CompressionKnobs{}, 123);
    const auto b = zooModel("HAR").withKnobs(CompressionKnobs{}, 123);
    EXPECT_EQ(a.paramCount(), b.paramCount());
    EXPECT_EQ(a.macCount(), b.macCount());
}

TEST(Networks, KnobsChangeCost)
{
    CompressionKnobs lean;
    lean.fcKeep = 0.2;
    CompressionKnobs fat;
    fat.fcKeep = 1.0;
    const auto a = zooModel("HAR").withKnobs(lean, 0x5eed);
    const auto b = zooModel("HAR").withKnobs(fat, 0x5eed);
    EXPECT_LT(a.paramCount(), b.paramCount());
    EXPECT_LT(a.macCount(), b.macCount());
}

TEST(Dataset, DeterministicAndLabeledByTeacher)
{
    const auto &teacher = zooModel("HAR").teacher();
    const auto a = makeDataset(teacher, 16, 42);
    const auto b = makeDataset(teacher, 16, 42);
    ASSERT_EQ(a.size(), 16u);
    for (u32 i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].label, b[i].label);
        EXPECT_EQ(a[i].label, teacher.classify(a[i].input));
    }
}

TEST(Dataset, TeacherPerfectAgreement)
{
    const auto &entry = zooModel("HAR");
    const auto data = makeDataset(entry.teacher(), 24, 7);
    EXPECT_EQ(agreement(entry.teacher(), data), 1.0);
    EXPECT_EQ(entry.meta().scaledAccuracy(1.0),
              entry.meta().paperAccuracy);
}

TEST(Dataset, DetectionRatesOfTeacherArePerfect)
{
    const auto &teacher = zooModel("HAR").teacher();
    const auto data = makeDataset(teacher, 32, 7);
    const u32 cls = dominantClass(data, teacher.numClasses);
    const auto rates = detectionRates(teacher, data, cls);
    EXPECT_EQ(rates.truePositive, 1.0);
    EXPECT_EQ(rates.trueNegative, 1.0);
    EXPECT_GT(rates.baseRate, 0.0);
}

TEST(DeviceNet, LoweringPreservesWeights)
{
    auto dev = continuousDevice();
    const auto spec = testutil::tinyNet();
    DeviceNetwork net(dev, spec);

    // Sparse FC: CSC reconstruction must match the float weights
    // up to quantization.
    const auto *sf = std::get_if<SparseFcLayer>(&spec.layers[2].op);
    const auto *dsf = std::get_if<DevSparseFc>(&net.layers()[2].op);
    ASSERT_NE(dsf, nullptr);
    EXPECT_EQ(dsf->nnz, sf->weights.nonZeroCount());
    for (u32 c = 0; c < dsf->n; ++c) {
        for (i32 t = dsf->colPtr->peek(c); t < dsf->colPtr->peek(c + 1);
             ++t) {
            const u32 r = static_cast<u32>(
                dsf->rowIdx->peek(static_cast<u32>(t)));
            const f64 w = fixed::Q78::fromRaw(
                              dsf->val->peek(static_cast<u32>(t)))
                              .toFloat();
            EXPECT_NEAR(w, sf->weights.at(r, c), 0.5 / 256.0 + 1e-9);
        }
    }
}

TEST(DeviceNet, SparseConvOffsetsConsistent)
{
    auto dev = continuousDevice();
    const auto spec = testutil::tinyNet();
    DeviceNetwork net(dev, spec);
    const auto &layer = net.layers()[1];
    const auto *sc = std::get_if<DevSparseConv>(&layer.op);
    ASSERT_NE(sc, nullptr);
    const u32 in_plane = layer.in.h * layer.in.w;
    for (u32 t = 0; t < sc->nnz; ++t) {
        const u32 expected =
            static_cast<u32>(sc->tapIc->peek(t)) * in_plane
            + static_cast<u32>(sc->tapKy->peek(t)) * layer.in.w
            + static_cast<u32>(sc->tapKx->peek(t));
        EXPECT_EQ(static_cast<u32>(sc->tapOff->peek(t)), expected);
    }
}

TEST(DeviceNet, BufferScheduleAlternates)
{
    auto dev = continuousDevice();
    const auto spec = testutil::tinyNet();
    DeviceNetwork net(dev, spec);
    // Layer 0 pools: output returns to its input buffer.
    EXPECT_EQ(net.inputBufferOf(0), 0u);
    EXPECT_EQ(net.outputBufferOf(0), 0u);
    // Layer 1 does not pool: output swaps.
    EXPECT_EQ(net.inputBufferOf(1), 0u);
    EXPECT_EQ(net.outputBufferOf(1), 1u);
    EXPECT_EQ(net.inputBufferOf(2), 1u);
    EXPECT_EQ(net.outputBufferOf(2), 0u);
}

TEST(DeviceNet, InputLoadAndQuantize)
{
    auto dev = continuousDevice();
    const auto spec = testutil::tinyNet();
    DeviceNetwork net(dev, spec);
    tensor::FeatureMap in(1, 8, 8);
    in.data[5] = 0.5;
    const auto q = DeviceNetwork::quantizeInput(in);
    net.loadInput(q);
    EXPECT_EQ(net.act(0).peek(5), fixed::Q78::fromFloat(0.5).raw());
    EXPECT_EQ(dev.cycles(), 0u); // flashing is uncharged
}

TEST(DeviceNet, FramFootprintWithinBudget)
{
    auto dev = continuousDevice();
    const auto &spec = zooModel("HAR").compressed();
    DeviceNetwork net(dev, spec);
    EXPECT_LE(dev.framBytesUsed(), u64{256} * 1024);
    EXPECT_GT(dev.framBytesUsed(), 0u);
}

} // namespace
} // namespace sonic::dnn
