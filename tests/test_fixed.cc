/**
 * @file
 * Unit and property tests for the Q7.8 / Q0.15 fixed-point arithmetic.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "fixed/fixed.hh"
#include "fixed/quantize.hh"
#include "util/rng.hh"

namespace sonic::fixed
{
namespace
{

TEST(Fixed, ZeroDefault)
{
    EXPECT_EQ(Q78().raw(), 0);
    EXPECT_EQ(Q78().toFloat(), 0.0);
}

TEST(Fixed, FromFloatRoundTripExactPowers)
{
    EXPECT_EQ(Q78::fromFloat(1.0).raw(), 256);
    EXPECT_EQ(Q78::fromFloat(-1.0).raw(), -256);
    EXPECT_EQ(Q78::fromFloat(0.5).raw(), 128);
    EXPECT_EQ(Q78::fromFloat(2.0).toFloat(), 2.0);
}

TEST(Fixed, QuantizationErrorBounded)
{
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        const f64 x = rng.uniform(-100.0, 100.0);
        const f64 back = Q78::fromFloat(x).toFloat();
        EXPECT_LE(std::fabs(back - x), 0.5 / 256.0 + 1e-12);
    }
}

TEST(Fixed, SaturationAtBounds)
{
    EXPECT_EQ(Q78::fromFloat(1000.0).raw(), Q78::kRawMax);
    EXPECT_EQ(Q78::fromFloat(-1000.0).raw(), Q78::kRawMin);
    const Q78 big = Q78::maxValue();
    EXPECT_EQ((big + big).raw(), Q78::kRawMax);
    const Q78 small = Q78::minValue();
    EXPECT_EQ((small + small).raw(), Q78::kRawMin);
}

TEST(Fixed, AdditionMatchesFloatWithoutSaturation)
{
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        const f64 a = rng.uniform(-30.0, 30.0);
        const f64 b = rng.uniform(-30.0, 30.0);
        const Q78 qa = Q78::fromFloat(a);
        const Q78 qb = Q78::fromFloat(b);
        EXPECT_NEAR((qa + qb).toFloat(), qa.toFloat() + qb.toFloat(),
                    1e-9);
    }
}

TEST(Fixed, MultiplicationErrorBounded)
{
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
        const f64 a = rng.uniform(-8.0, 8.0);
        const f64 b = rng.uniform(-8.0, 8.0);
        const Q78 qa = Q78::fromFloat(a);
        const Q78 qb = Q78::fromFloat(b);
        const f64 exact = qa.toFloat() * qb.toFloat();
        EXPECT_NEAR((qa * qb).toFloat(), exact, 0.5 / 256.0 + 1e-9);
    }
}

TEST(Fixed, MultiplicationCommutative)
{
    Rng rng(9);
    for (int i = 0; i < 500; ++i) {
        const Q78 a = Q78::fromRaw(static_cast<i16>(rng.next()));
        const Q78 b = Q78::fromRaw(static_cast<i16>(rng.next()));
        EXPECT_EQ((a * b).raw(), (b * a).raw());
    }
}

TEST(Fixed, NegationSymmetric)
{
    Rng rng(11);
    for (int i = 0; i < 500; ++i) {
        i16 raw = static_cast<i16>(rng.next());
        if (raw == Q78::kRawMin)
            raw = 0; // -min saturates by design
        const Q78 a = Q78::fromRaw(raw);
        EXPECT_EQ((-(-a)).raw(), a.raw());
    }
}

TEST(Fixed, NegateMinSaturates)
{
    EXPECT_EQ((-Q78::minValue()).raw(), Q78::kRawMax);
}

TEST(Fixed, ReluClampsNegatives)
{
    EXPECT_EQ(Q78::relu(Q78::fromFloat(-3.0)).raw(), 0);
    EXPECT_EQ(Q78::relu(Q78::fromFloat(3.0)).raw(),
              Q78::fromFloat(3.0).raw());
    EXPECT_EQ(Q78::relu(Q78()).raw(), 0);
}

TEST(Fixed, ReluIdempotent)
{
    Rng rng(13);
    for (int i = 0; i < 500; ++i) {
        const Q78 a = Q78::fromRaw(static_cast<i16>(rng.next()));
        EXPECT_EQ(Q78::relu(Q78::relu(a)).raw(), Q78::relu(a).raw());
    }
}

TEST(Fixed, MaxPicksLarger)
{
    const Q78 a = Q78::fromFloat(1.5);
    const Q78 b = Q78::fromFloat(-2.5);
    EXPECT_EQ(Q78::max(a, b).raw(), a.raw());
    EXPECT_EQ(Q78::max(b, a).raw(), a.raw());
    EXPECT_EQ(Q78::max(a, a).raw(), a.raw());
}

TEST(Fixed, ComparisonsFollowRaw)
{
    EXPECT_LT(Q78::fromFloat(-1.0), Q78::fromFloat(1.0));
    EXPECT_GT(Q78::fromFloat(2.0), Q78::fromFloat(1.0));
    EXPECT_EQ(Q78::fromFloat(1.0), Q78::fromFloat(1.0));
}

TEST(Fixed, Q15RangeIsUnit)
{
    EXPECT_NEAR(Q15::maxValue().toFloat(), 1.0, 1e-4);
    EXPECT_NEAR(Q15::minValue().toFloat(), -1.0, 1e-4);
}

TEST(Fixed, FormatConversionUpThenDown)
{
    const Q78 a = Q78::fromFloat(0.75);
    const Q15 b = convertFormat<8, 15>(a);
    EXPECT_NEAR(b.toFloat(), 0.75, 1e-3);
    const Q78 c = convertFormat<15, 8>(b);
    EXPECT_EQ(c.raw(), a.raw());
}

TEST(Fixed, FormatConversionSaturates)
{
    // 4.0 in Q7.8 cannot be represented in Q0.15.
    const Q78 a = Q78::fromFloat(4.0);
    const Q15 b = convertFormat<8, 15>(a);
    EXPECT_EQ(b.raw(), Q15::kRawMax);
}

TEST(Fixed, ShiftCounts)
{
    EXPECT_EQ((formatShiftCount<8, 15>()), 7u);
    EXPECT_EQ((formatShiftCount<15, 8>()), 7u);
    EXPECT_EQ((formatShiftCount<8, 8>()), 0u);
}

TEST(Quantize, RoundTripVector)
{
    const std::vector<f64> values = {0.0, 1.0, -1.0, 0.123, -7.875};
    const auto raw = quantizeQ78(values);
    const auto back = dequantizeQ78(raw);
    ASSERT_EQ(back.size(), values.size());
    for (u32 i = 0; i < values.size(); ++i)
        EXPECT_NEAR(back[i], values[i], 0.5 / 256.0 + 1e-12);
}

TEST(Quantize, MaxErrorBound)
{
    Rng rng(17);
    std::vector<f64> values;
    for (int i = 0; i < 1000; ++i)
        values.push_back(rng.uniform(-50.0, 50.0));
    EXPECT_LE(maxQuantizationError(values), 0.5 / 256.0 + 1e-12);
}

/** Property sweep: a*b via fixed is within half-ulp of float product
 * across a structured grid. */
class FixedMulSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(FixedMulSweep, GridAccuracy)
{
    const int i = GetParam();
    const f64 a = -10.0 + 0.37 * i;
    for (int j = 0; j < 54; ++j) {
        const f64 b = -10.0 + 0.37 * j;
        const Q78 qa = Q78::fromFloat(a);
        const Q78 qb = Q78::fromFloat(b);
        const f64 exact = qa.toFloat() * qb.toFloat();
        if (std::fabs(exact) < 127.0) {
            EXPECT_NEAR((qa * qb).toFloat(), exact,
                        0.5 / 256.0 + 1e-9);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Grid, FixedMulSweep, ::testing::Range(0, 54));

} // namespace
} // namespace sonic::fixed
