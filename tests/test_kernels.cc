/**
 * @file
 * Kernel correctness on continuous power: every implementation (Base,
 * Tile-k, SONIC, TAILS) must compute the right answer. Base/Tiled/SONIC
 * share the same per-element tap accumulation order, so their logits
 * are bit-identical; TAILS computes through LEA's Q15 pipeline and is
 * checked against the float reference with a tolerance.
 */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "dnn/dataset.hh"
#include "dnn/device_net.hh"
#include "dnn/zoo.hh"
#include "fixed/fixed.hh"
#include "kernels/runner.hh"
#include "tests/test_helpers.hh"

namespace sonic::kernels
{
namespace
{

arch::Device
continuousDevice()
{
    return arch::Device(arch::EnergyProfile::msp430fr5994(),
                        std::make_unique<arch::ContinuousPower>());
}

std::vector<i16>
runTiny(Impl impl)
{
    auto dev = continuousDevice();
    const auto spec = testutil::tinyNet();
    dnn::DeviceNetwork net(dev, spec);
    net.loadInput(testutil::tinyInput());
    const auto res = runInference(net, impl);
    EXPECT_TRUE(res.completed) << implName(impl);
    return res.logits;
}

std::vector<f64>
tinyFloatReference()
{
    const auto spec = testutil::tinyNet();
    tensor::FeatureMap in(1, 8, 8);
    const auto q = testutil::tinyInput();
    for (u32 i = 0; i < q.size(); ++i)
        in.data[i] = fixed::Q78::fromRaw(q[i]).toFloat();
    return spec.forward(in);
}

TEST(Kernels, BaseMatchesFloatReference)
{
    const auto logits = runTiny(Impl::Base);
    const auto ref = tinyFloatReference();
    ASSERT_EQ(logits.size(), ref.size());
    for (u32 i = 0; i < ref.size(); ++i) {
        EXPECT_NEAR(fixed::Q78::fromRaw(logits[i]).toFloat(), ref[i],
                    0.08)
            << "logit " << i;
    }
}

TEST(Kernels, SoftwareImplsBitIdentical)
{
    const auto base = runTiny(Impl::Base);
    EXPECT_EQ(runTiny(Impl::Tile8), base);
    EXPECT_EQ(runTiny(Impl::Tile32), base);
    EXPECT_EQ(runTiny(Impl::Tile128), base);
    EXPECT_EQ(runTiny(Impl::Sonic), base);
}

TEST(Kernels, TailsCloseToReference)
{
    const auto logits = runTiny(Impl::Tails);
    const auto ref = tinyFloatReference();
    f64 worst = 0.0;
    for (u32 i = 0; i < ref.size(); ++i)
        worst = std::max(worst,
                         std::fabs(fixed::Q78::fromRaw(logits[i])
                                       .toFloat()
                                   - ref[i]));
    EXPECT_LT(worst, 0.25);
}

TEST(Kernels, AllImplsAgreeOnTinyArgmax)
{
    const auto ref = tinyFloatReference();
    const u32 want = tensor::argmax(ref);
    for (auto impl : kAllImpls) {
        const auto logits = runTiny(impl);
        u32 best = 0;
        for (u32 i = 1; i < logits.size(); ++i)
            if (logits[i] > logits[best])
                best = i;
        EXPECT_EQ(best, want) << implName(impl);
    }
}

TEST(Kernels, ImplNamesAndTiles)
{
    EXPECT_EQ(implName(Impl::Sonic), "SONIC");
    EXPECT_EQ(implTileSize(Impl::Tile32), 32u);
    EXPECT_EQ(implTileSize(Impl::Sonic), 0u);
}

TEST(Registry, RoundTripsEveryBuiltinByName)
{
    auto &registry = ImplRegistry::instance();
    EXPECT_GE(registry.size(), 6u);
    for (auto impl : kAllImpls) {
        const auto *by_id = registry.find(impl);
        ASSERT_NE(by_id, nullptr);
        EXPECT_EQ(by_id->id, impl);
        EXPECT_EQ(by_id->name, implName(impl));
        EXPECT_EQ(by_id->tileSize, implTileSize(impl));
        // name -> row -> id round trip
        const auto *by_name = registry.find(by_id->name);
        ASSERT_NE(by_name, nullptr);
        EXPECT_EQ(by_name->id, impl);
    }
}

TEST(Registry, UnknownLookupsReturnNull)
{
    auto &registry = ImplRegistry::instance();
    EXPECT_EQ(registry.find("no-such-impl"), nullptr);
    EXPECT_EQ(registry.find(static_cast<Impl>(250)), nullptr);
    EXPECT_EQ(implName(static_cast<Impl>(250)), "?");
    EXPECT_EQ(implTileSize(static_cast<Impl>(250)), 0u);
}

TEST(Registry, DynamicImplPlugsInWithoutRunnerChanges)
{
    // Register the paper's missing middle tiling: a Tile-64 variant
    // using the stock tiled entry point. No switch statement to edit —
    // the registry row is the whole integration. The registry is
    // process-global, so stay idempotent under --gtest_repeat.
    auto &registry = ImplRegistry::instance();
    const auto *existing = registry.find("Tile-64");
    const Impl tile64 = existing != nullptr
        ? existing->id
        : registry.add("Tile-64", 64,
                       [](dnn::DeviceNetwork &net, u32 tile) {
                           return runTiled(net, tile);
                       });

    EXPECT_EQ(implName(tile64), "Tile-64");
    EXPECT_EQ(implTileSize(tile64), 64u);
    const auto *info = registry.find("Tile-64");
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->id, tile64);

    // Dispatch through the generic runner; software tilings are
    // bit-identical to Base.
    EXPECT_EQ(runTiny(tile64), runTiny(Impl::Base));

    // Registration order is stable and includes the newcomer.
    const auto all = registry.all();
    EXPECT_EQ(all.front(), Impl::Base);
    EXPECT_NE(std::find(all.begin(), all.end(), tile64), all.end());
}

TEST(Kernels, SonicCheaperThanTiledOnDevice)
{
    auto run_cycles = [](Impl impl) {
        auto dev = continuousDevice();
        const auto spec = testutil::tinyNet();
        dnn::DeviceNetwork net(dev, spec);
        net.loadInput(testutil::tinyInput());
        EXPECT_TRUE(runInference(net, impl).completed);
        return dev.cycles();
    };
    const u64 base = run_cycles(Impl::Base);
    const u64 sonic = run_cycles(Impl::Sonic);
    const u64 tile8 = run_cycles(Impl::Tile8);
    EXPECT_GT(sonic, base);       // correctness is not free
    EXPECT_GT(tile8, 2 * sonic);  // but SONIC is far cheaper than tiling
}

TEST(Kernels, SonicReusableForSecondInference)
{
    // Loop state must reset so a second inference on the same device
    // network computes the same answer.
    auto dev = continuousDevice();
    const auto spec = testutil::tinyNet();
    dnn::DeviceNetwork net(dev, spec);
    net.loadInput(testutil::tinyInput());
    const auto first = runInference(net, Impl::Sonic);
    ASSERT_TRUE(first.completed);
    net.loadInput(testutil::tinyInput());
    const auto second = runInference(net, Impl::Sonic);
    ASSERT_TRUE(second.completed);
    EXPECT_EQ(first.logits, second.logits);
}

/** Each implementation computes the three real workloads correctly on
 * continuous power (argmax agreement with the float reference). */
class RealNetContinuous
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(RealNetContinuous, ArgmaxMatchesFloatReference)
{
    const dnn::NetRef net_name =
        dnn::kPaperNets[std::get<0>(GetParam())];
    const auto impl = static_cast<Impl>(std::get<1>(GetParam()));
    // MNIST on the tiled impls is slow; restrict tiled checks to the
    // smaller networks (MNIST tiled correctness is covered by the
    // bit-identity with Base on the tiny net plus Fig. 9 benches).
    if (net_name == "MNIST"
        && (impl == Impl::Tile8 || impl == Impl::Tile32
            || impl == Impl::Tile128)) {
        GTEST_SKIP();
    }

    const auto &entry = dnn::ModelZoo::instance().get(net_name);
    const auto &spec = entry.compressed();
    const auto data = dnn::makeDataset(entry.teacher(), 3, 0xabc);

    auto dev = continuousDevice();
    dnn::DeviceNetwork net(dev, spec);
    u32 agree = 0;
    for (const auto &sample : data) {
        net.loadInput(dnn::DeviceNetwork::quantizeInput(sample.input));
        const auto res = runInference(net, impl);
        ASSERT_TRUE(res.completed);
        u32 best = 0;
        for (u32 i = 1; i < res.logits.size(); ++i)
            if (res.logits[i] > res.logits[best])
                best = i;
        agree += best == spec.classify(sample.input);
    }
    // Quantization may flip a borderline sample; demand majority for
    // the Q7.8 software pipelines. TAILS additionally truncates at
    // LEA's >>15 renormalization (a 1/16 output step), so borderline
    // argmaxes flip more often — require only that it is not always
    // wrong (its intermittent-vs-continuous bit-exactness is covered
    // in test_intermittent.cc).
    EXPECT_GE(agree, impl == Impl::Tails ? 1u : 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RealNetContinuous,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0, 1, 2, 3, 4, 5)));

} // namespace
} // namespace sonic::kernels
