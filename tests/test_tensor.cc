/**
 * @file
 * Unit tests for the host tensor kit: matrices, decompositions
 * (symmetric eigen, truncated SVD, rank-1 CP), pruning, sparse
 * formats, and the reference NN primitives.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/decompose.hh"
#include "tensor/matrix.hh"
#include "tensor/nnref.hh"
#include "tensor/sparse.hh"
#include "util/rng.hh"

namespace sonic::tensor
{
namespace
{

TEST(Matrix, IdentityMatmul)
{
    Rng rng(1);
    Matrix a = Matrix::gaussian(4, 6, rng);
    Matrix out = Matrix::identity(4).matmul(a);
    EXPECT_LT(a.relativeError(out), 1e-12);
}

TEST(Matrix, TransposeInvolution)
{
    Rng rng(2);
    Matrix a = Matrix::gaussian(5, 3, rng);
    EXPECT_LT(a.relativeError(a.transpose().transpose()), 1e-15);
}

TEST(Matrix, MatvecMatchesMatmul)
{
    Rng rng(3);
    Matrix a = Matrix::gaussian(4, 5, rng);
    std::vector<f64> x = {1, -2, 3, 0.5, -0.25};
    Matrix xm(5, 1);
    for (u32 i = 0; i < 5; ++i)
        xm.at(i, 0) = x[i];
    const auto y = a.matvec(x);
    const Matrix ym = a.matmul(xm);
    for (u32 i = 0; i < 4; ++i)
        EXPECT_NEAR(y[i], ym.at(i, 0), 1e-12);
}

TEST(Matrix, FrobeniusNorm)
{
    Matrix a(2, 2);
    a.at(0, 0) = 3;
    a.at(1, 1) = 4;
    EXPECT_NEAR(a.frobeniusNorm(), 5.0, 1e-12);
}

TEST(Matrix, NonZeroCount)
{
    Matrix a(2, 3);
    a.at(0, 1) = 2.0;
    a.at(1, 2) = -1.0;
    EXPECT_EQ(a.nonZeroCount(), 2u);
}

TEST(Eigen, DiagonalMatrix)
{
    Matrix d(3, 3);
    d.at(0, 0) = 5;
    d.at(1, 1) = 2;
    d.at(2, 2) = 9;
    const auto eig = symmetricEigen(d);
    EXPECT_NEAR(eig.values[0], 9, 1e-9);
    EXPECT_NEAR(eig.values[1], 5, 1e-9);
    EXPECT_NEAR(eig.values[2], 2, 1e-9);
}

TEST(Eigen, ReconstructsSymmetricMatrix)
{
    Rng rng(4);
    Matrix a = Matrix::gaussian(6, 6, rng);
    Matrix sym = a + a.transpose();
    const auto eig = symmetricEigen(sym);
    // Reconstruct V diag(L) V^T.
    Matrix rec(6, 6);
    for (u32 r = 0; r < 6; ++r)
        for (u32 c = 0; c < 6; ++c) {
            f64 acc = 0;
            for (u32 k = 0; k < 6; ++k)
                acc += eig.vectors.at(r, k) * eig.values[k]
                     * eig.vectors.at(c, k);
            rec.at(r, c) = acc;
        }
    EXPECT_LT(sym.relativeError(rec), 1e-8);
}

TEST(Svd, FullRankReconstructs)
{
    Rng rng(5);
    Matrix a = Matrix::gaussian(6, 9, rng);
    const auto svd = truncatedSvd(a, 6);
    EXPECT_LT(a.relativeError(svd.reconstruct()), 1e-8);
}

TEST(Svd, SingularValuesDescending)
{
    Rng rng(6);
    Matrix a = Matrix::gaussian(8, 5, rng);
    const auto svd = truncatedSvd(a, 5);
    for (u32 i = 1; i < svd.s.size(); ++i)
        EXPECT_GE(svd.s[i - 1], svd.s[i] - 1e-12);
}

TEST(Svd, RankOneMatrixExact)
{
    // a = u v^T has rank 1; rank-1 SVD must be near-exact.
    Matrix a(4, 3);
    const f64 u[] = {1, -2, 0.5, 3};
    const f64 v[] = {2, 0.25, -1};
    for (u32 r = 0; r < 4; ++r)
        for (u32 c = 0; c < 3; ++c)
            a.at(r, c) = u[r] * v[c];
    const auto svd = truncatedSvd(a, 1);
    EXPECT_LT(a.relativeError(svd.reconstruct()), 1e-10);
}

TEST(Svd, TruncationErrorDecreasesWithRank)
{
    Rng rng(7);
    Matrix a = Matrix::gaussian(10, 12, rng);
    f64 prev = 1e9;
    for (u32 k : {1u, 3u, 6u, 10u}) {
        const f64 err = a.relativeError(truncatedSvd(a, k).reconstruct());
        EXPECT_LE(err, prev + 1e-12);
        prev = err;
    }
}

TEST(Svd, FactoredParams)
{
    Rng rng(8);
    Matrix a = Matrix::gaussian(10, 20, rng);
    const auto svd = truncatedSvd(a, 4);
    EXPECT_EQ(svd.factoredParams(), 10u * 4 + 20u * 4);
}

TEST(Cp1, RankOneTensorExact)
{
    std::vector<f64> a = {1, 2, -1};
    std::vector<f64> b = {0.5, -0.25};
    std::vector<f64> c = {3, 1, 2, -2};
    Tensor3 t(3, 2, 4);
    for (u32 i = 0; i < 3; ++i)
        for (u32 j = 0; j < 2; ++j)
            for (u32 k = 0; k < 4; ++k)
                t.at(i, j, k) = a[i] * b[j] * c[k];
    const auto cp = cpRank1(t);
    EXPECT_LT(cpRank1Error(t, cp), 1e-9);
}

TEST(Cp1, CapturesDominantComponent)
{
    Rng rng(9);
    Tensor3 t(8, 5, 5);
    // Dominant rank-1 term plus small noise.
    std::vector<f64> a(8), b(5), c(5);
    for (auto &x : a)
        x = rng.gaussian();
    for (auto &x : b)
        x = rng.gaussian();
    for (auto &x : c)
        x = rng.gaussian();
    for (u32 i = 0; i < 8; ++i)
        for (u32 j = 0; j < 5; ++j)
            for (u32 k = 0; k < 5; ++k)
                t.at(i, j, k) =
                    a[i] * b[j] * c[k] + 0.01 * rng.gaussian();
    const auto cp = cpRank1(t);
    EXPECT_LT(cpRank1Error(t, cp), 0.15);
    EXPECT_EQ(cp.factoredParams(), 8u + 5 + 5 + 1);
}

TEST(Prune, ThresholdZeroesSmall)
{
    Matrix a(1, 4);
    a.at(0, 0) = 0.1;
    a.at(0, 1) = -0.5;
    a.at(0, 2) = 0.01;
    a.at(0, 3) = 2.0;
    EXPECT_EQ(pruneThreshold(a, 0.2), 2u);
    EXPECT_EQ(a.at(0, 0), 0.0);
    EXPECT_EQ(a.at(0, 1), -0.5);
}

TEST(Prune, FractionKeepsExactCount)
{
    Rng rng(10);
    Matrix a = Matrix::gaussian(20, 20, rng);
    EXPECT_EQ(pruneToFraction(a, 0.25), 100u);
    EXPECT_EQ(a.nonZeroCount(), 100u);
}

TEST(Prune, FractionKeepsLargestMagnitudes)
{
    Matrix a(1, 5);
    a.at(0, 0) = 5;
    a.at(0, 1) = -4;
    a.at(0, 2) = 3;
    a.at(0, 3) = 2;
    a.at(0, 4) = 1;
    pruneToFraction(a, 0.4);
    EXPECT_EQ(a.at(0, 0), 5.0);
    EXPECT_EQ(a.at(0, 1), -4.0);
    EXPECT_EQ(a.at(0, 2), 0.0);
}

TEST(Prune, ZeroFractionZeroesAll)
{
    Rng rng(11);
    Matrix a = Matrix::gaussian(5, 5, rng);
    EXPECT_EQ(pruneToFraction(a, 0.0), 0u);
    EXPECT_EQ(a.nonZeroCount(), 0u);
}

TEST(Sparse, CscRoundTrip)
{
    Rng rng(12);
    Matrix a = Matrix::gaussian(7, 9, rng);
    pruneToFraction(a, 0.3);
    const auto csc = CscMatrix::fromDense(a);
    EXPECT_EQ(csc.nnz(), a.nonZeroCount());
    EXPECT_LT(a.relativeError(csc.toDense()), 1e-15);
}

TEST(Sparse, CsrRoundTrip)
{
    Rng rng(13);
    Matrix a = Matrix::gaussian(7, 9, rng);
    pruneToFraction(a, 0.3);
    const auto csr = CsrMatrix::fromDense(a);
    EXPECT_LT(a.relativeError(csr.toDense()), 1e-15);
}

TEST(Sparse, MatvecAgreesWithDense)
{
    Rng rng(14);
    Matrix a = Matrix::gaussian(6, 8, rng);
    pruneToFraction(a, 0.4);
    std::vector<f64> x(8);
    for (auto &v : x)
        v = rng.gaussian();
    const auto dense = a.matvec(x);
    const auto via_csc = CscMatrix::fromDense(a).matvec(x);
    const auto via_csr = CsrMatrix::fromDense(a).matvec(x);
    for (u32 i = 0; i < 6; ++i) {
        EXPECT_NEAR(via_csc[i], dense[i], 1e-12);
        EXPECT_NEAR(via_csr[i], dense[i], 1e-12);
    }
}

TEST(NnRef, Conv2dHandComputed)
{
    FeatureMap in(1, 3, 3);
    for (u32 i = 0; i < 9; ++i)
        in.data[i] = i + 1; // 1..9
    FilterBank f(1, 1, 2, 2);
    f.at(0, 0, 0, 0) = 1;
    f.at(0, 0, 0, 1) = 0;
    f.at(0, 0, 1, 0) = 0;
    f.at(0, 0, 1, 1) = 1;
    const auto out = conv2dValid(in, f);
    EXPECT_EQ(out.height, 2u);
    EXPECT_EQ(out.width, 2u);
    EXPECT_NEAR(out.at(0, 0, 0), 1 + 5, 1e-12);
    EXPECT_NEAR(out.at(0, 1, 1), 5 + 9, 1e-12);
}

TEST(NnRef, FactoredEqualsRankOneConv)
{
    // A rank-1 separable 2-D conv equals col-conv then row-conv.
    Rng rng(15);
    FeatureMap in(1, 6, 7);
    for (auto &v : in.data)
        v = rng.gaussian();
    std::vector<f64> col = {0.5, -1.0, 0.25};
    std::vector<f64> row = {2.0, 1.0};
    FilterBank f(1, 1, 3, 2);
    for (u32 y = 0; y < 3; ++y)
        for (u32 x = 0; x < 2; ++x)
            f.at(0, 0, y, x) = col[y] * row[x];
    const auto direct = conv2dValid(in, f);
    const auto factored = convRows(convCols(in, col), row);
    ASSERT_EQ(direct.size(), factored.size());
    for (u64 i = 0; i < direct.size(); ++i)
        EXPECT_NEAR(direct.data[i], factored.data[i], 1e-10);
}

TEST(NnRef, ChannelMixAndScale)
{
    FeatureMap in(2, 1, 2);
    in.at(0, 0, 0) = 1;
    in.at(0, 0, 1) = 2;
    in.at(1, 0, 0) = 3;
    in.at(1, 0, 1) = 4;
    const auto mixed = channelMix(in, {2.0, -1.0});
    EXPECT_NEAR(mixed.at(0, 0, 0), -1.0, 1e-12);
    EXPECT_NEAR(mixed.at(0, 0, 1), 0.0, 1e-12);
    const auto scaled = channelScale(mixed, {1.0, -2.0});
    EXPECT_EQ(scaled.channels, 2u);
    EXPECT_NEAR(scaled.at(1, 0, 0), 2.0, 1e-12);
}

TEST(NnRef, MaxPoolPicksMax)
{
    FeatureMap in(1, 2, 4);
    const f64 vals[] = {1, 5, 2, 0, 3, -1, 8, 4};
    for (u32 i = 0; i < 8; ++i)
        in.data[i] = vals[i];
    const auto out = maxPool2x2(in);
    EXPECT_EQ(out.width, 2u);
    EXPECT_NEAR(out.at(0, 0, 0), 5.0, 1e-12);
    EXPECT_NEAR(out.at(0, 0, 1), 8.0, 1e-12);
}

TEST(NnRef, ReluAndArgmax)
{
    const std::vector<f64> v = {-1.0, 2.0, 0.5};
    const auto r = relu(v);
    EXPECT_EQ(r[0], 0.0);
    EXPECT_EQ(argmax(v), 1u);
}

TEST(NnRef, MacsCount)
{
    FilterBank f(4, 3, 2, 2);
    // 4*3*2*2 taps x (5-2+1)*(6-2+1) positions
    EXPECT_EQ(f.macs(5, 6), u64{4} * 3 * 2 * 2 * 4 * 5);
}

/** SVD rank sweep as a parameterized property: reconstruction is
 * monotone in rank on the same matrix. */
class SvdRankSweep : public ::testing::TestWithParam<u32>
{
};

TEST_P(SvdRankSweep, ReconstructionImproves)
{
    Rng rng(99);
    static Matrix a = Matrix::gaussian(12, 9, rng);
    const u32 k = GetParam();
    const f64 err_k =
        a.relativeError(truncatedSvd(a, k).reconstruct());
    const f64 err_k1 =
        a.relativeError(truncatedSvd(a, k + 1).reconstruct());
    EXPECT_LE(err_k1, err_k + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Ranks, SvdRankSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u));

} // namespace
} // namespace sonic::tensor
