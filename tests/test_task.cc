/**
 * @file
 * Tests for the task runtime: scheduling, redo-log semantics
 * (read-own-writes, commit atomicity, replay), non-termination
 * detection, and — crucially — crash consistency at *every* operation
 * via exhaustive fail-at-N sweeps.
 */

#include <gtest/gtest.h>

#include "arch/memory.hh"
#include "task/runtime.hh"

namespace sonic::task
{
namespace
{

using arch::ContinuousPower;
using arch::Device;
using arch::EnergyProfile;
using arch::FailEveryOps;
using arch::FailOnceAfterOps;
using arch::NvArray;
using arch::NvVar;
using arch::Op;

Device
continuousDevice()
{
    return Device(EnergyProfile::msp430fr5994(),
                  std::make_unique<ContinuousPower>());
}

TEST(Scheduler, RunsAChainOfTasks)
{
    auto dev = continuousDevice();
    Program prog;
    NvVar<i16> counter(dev, "c", 0);
    const TaskId t2 = prog.addTask("t2", [&](Runtime &rt) {
        rt.logWrite(counter, static_cast<i16>(counter.peek() + 10));
        return kDone;
    });
    const TaskId t1 = prog.addTask("t1", [&](Runtime &rt) {
        rt.logWrite(counter, static_cast<i16>(counter.peek() + 1));
        return t2;
    });
    Scheduler sched(dev, prog);
    const auto res = sched.run(t1);
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.tasksExecuted, 2u);
    EXPECT_EQ(counter.peek(), 11);
}

TEST(Scheduler, TaskRestartsAfterFailure)
{
    Device dev(EnergyProfile::msp430fr5994(),
               std::make_unique<FailOnceAfterOps>(20));
    Program prog;
    NvVar<i16> attempts(dev, "attempts", 0);
    const TaskId t = prog.addTask("t", [&](Runtime &rt) {
        attempts.poke(static_cast<i16>(attempts.peek() + 1));
        for (int k = 0; k < 50; ++k)
            rt.dev().consume(Op::Nop); // 50 draws: hits the injector
        return kDone;
    });
    Scheduler sched(dev, prog);
    const auto res = sched.run(t);
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.reboots, 1u);
    EXPECT_EQ(attempts.peek(), 2); // executed twice
}

TEST(Runtime, LogReadSeesOwnWrites)
{
    auto dev = continuousDevice();
    Program prog;
    NvArray<i16> arr(dev, 4, "a");
    arr.poke(2, 5);
    bool saw_own = false, saw_home = false;
    const TaskId t = prog.addTask("t", [&](Runtime &rt) {
        saw_home = rt.logRead(arr, 2) == 5;
        rt.logWrite(arr, 2, 9);
        saw_own = rt.logRead(arr, 2) == 9;
        return kDone;
    });
    Scheduler sched(dev, prog);
    EXPECT_TRUE(sched.run(t).completed);
    EXPECT_TRUE(saw_home);
    EXPECT_TRUE(saw_own);
    EXPECT_EQ(arr.peek(2), 9); // committed
}

TEST(Runtime, UncommittedWritesDiscardedOnFailure)
{
    // Fail after the log write but before the transition commit: the
    // home location must keep its old value on restart.
    Device dev(EnergyProfile::msp430fr5994(),
               std::make_unique<FailOnceAfterOps>(8));
    Program prog;
    NvArray<i16> arr(dev, 1, "a");
    arr.poke(0, 1);
    int attempt = 0;
    std::vector<i16> seen;
    const TaskId t = prog.addTask("t", [&](Runtime &rt) {
        seen.push_back(arr.peek(0));
        ++attempt;
        rt.logWrite(arr, 0, static_cast<i16>(100 + attempt));
        rt.dev().consume(Op::Nop, 20);
        return kDone;
    });
    Scheduler sched(dev, prog);
    const auto res = sched.run(t);
    EXPECT_TRUE(res.completed);
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], 1);
    EXPECT_EQ(seen[1], 1);       // first attempt's write discarded
    EXPECT_EQ(arr.peek(0), 102); // second attempt committed
}

TEST(Runtime, LogIndexResolvesLargeLogsLatestWins)
{
    // The O(1) read index must agree with what the old reverse scan
    // computed: the latest uncommitted write to each location wins,
    // unlogged locations fall through to home, and the log itself
    // still records every entry (commit order is unchanged).
    auto dev = continuousDevice();
    Program prog;
    NvArray<i16> arr(dev, 256, "a");
    NvVar<i32> big(dev, "big", -7);
    for (u32 k = 0; k < 256; ++k)
        arr.poke(k, static_cast<i16>(k));
    bool ok = true;
    u64 entries = 0;
    const TaskId t = prog.addTask("t", [&](Runtime &rt) {
        // Three overwrite rounds across half the array.
        for (int round = 0; round < 3; ++round)
            for (u32 k = 0; k < 256; k += 2)
                rt.logWrite(arr, k,
                            static_cast<i16>(1000 * round + k));
        rt.logWrite(big, 41);
        rt.logWrite(big, 42);
        for (u32 k = 0; k < 256; ++k) {
            const i16 expect = (k % 2 == 0)
                ? static_cast<i16>(2000 + k)
                : static_cast<i16>(k); // unlogged -> home value
            ok = ok && rt.logRead(arr, k) == expect;
        }
        ok = ok && rt.logRead(big) == 42;
        entries = rt.logSize();
        return kDone;
    });
    Scheduler sched(dev, prog);
    EXPECT_TRUE(sched.run(t).completed);
    EXPECT_TRUE(ok);
    EXPECT_EQ(entries, 3u * 128u + 2u); // entries, not locations
    EXPECT_EQ(arr.peek(2), 2002);       // committed latest value
    EXPECT_EQ(big.peek(), 42);
}

TEST(Runtime, LastLoggedWriteWins)
{
    auto dev = continuousDevice();
    Program prog;
    NvArray<i16> arr(dev, 1, "a");
    const TaskId t = prog.addTask("t", [&](Runtime &rt) {
        rt.logWrite(arr, 0, 1);
        rt.logWrite(arr, 0, 2);
        rt.logWrite(arr, 0, 3);
        return kDone;
    });
    Scheduler sched(dev, prog);
    EXPECT_TRUE(sched.run(t).completed);
    EXPECT_EQ(arr.peek(0), 3);
}

TEST(Runtime, ScalarVarsLogged)
{
    auto dev = continuousDevice();
    Program prog;
    NvVar<i32> big(dev, "big", 7);
    NvVar<i16> small(dev, "small", -2);
    const TaskId t = prog.addTask("t", [&](Runtime &rt) {
        EXPECT_EQ(rt.logRead(big), 7);
        EXPECT_EQ(rt.logRead(small), -2);
        rt.logWrite(big, 100000);
        rt.logWrite(small, static_cast<i16>(123));
        EXPECT_EQ(rt.logRead(big), 100000);
        EXPECT_EQ(rt.logRead(small), 123);
        return kDone;
    });
    Scheduler sched(dev, prog);
    EXPECT_TRUE(sched.run(t).completed);
    EXPECT_EQ(big.peek(), 100000);
    EXPECT_EQ(small.peek(), 123);
}

TEST(Scheduler, DetectsNonTermination)
{
    // A task that always needs more energy than one charge cycle and
    // makes no non-volatile progress.
    Device dev(EnergyProfile::msp430fr5994(),
               std::make_unique<FailEveryOps>(10));
    Program prog;
    const TaskId t = prog.addTask("hog", [&](Runtime &rt) {
        for (int k = 0; k < 1000; ++k)
            rt.dev().consume(Op::Nop);
        return kDone;
    });
    SchedulerConfig config;
    config.maxFailuresWithoutProgress = 16;
    Scheduler sched(dev, prog, config);
    const auto res = sched.run(t);
    EXPECT_FALSE(res.completed);
    EXPECT_TRUE(res.nonTerminating);
}

TEST(Scheduler, ProgressBeaconPreventsDnfVerdict)
{
    // Same energy starvation, but the task advances a loop-continuation
    // index each attempt — it must finish eventually.
    Device dev(EnergyProfile::msp430fr5994(),
               std::make_unique<FailEveryOps>(40));
    Program prog;
    NvVar<i16> i(dev, "i", 0);
    const TaskId t = prog.addTask("loop", [&](Runtime &rt) {
        i16 cur = i.read();
        while (cur < 200) {
            rt.dev().consume(Op::FixedMul);
            i.write(static_cast<i16>(cur + 1));
            rt.progress(static_cast<u64>(cur));
            ++cur;
        }
        return kDone;
    });
    SchedulerConfig config;
    config.maxFailuresWithoutProgress = 4;
    Scheduler sched(dev, prog, config);
    const auto res = sched.run(t);
    EXPECT_TRUE(res.completed);
    EXPECT_GT(res.reboots, 10u);
    EXPECT_EQ(i.peek(), 200);
}

/**
 * The central crash-consistency property: a multi-task program with
 * logged writes, interrupted by exactly one power failure at operation
 * N, must produce the same final state as an uninterrupted run — for
 * every N up to the program's length. This covers failures inside
 * tasks, during commit phase 1, during entry application, and during
 * the commit-flag clear.
 */
TEST(Scheduler, CommitAtomicityAtEveryOperation)
{
    // First measure the uninterrupted op count and golden state.
    auto golden_run = [](arch::PowerSupply *psu_raw,
                         std::vector<i16> &out, u64 &ops) {
        std::unique_ptr<arch::PowerSupply> psu(psu_raw);
        Device dev(EnergyProfile::msp430fr5994(), std::move(psu));
        Program prog;
        NvArray<i16> arr(dev, 8, "a");
        NvVar<i16> sum(dev, "sum", 0);
        const TaskId t2 = prog.addTask("t2", [&](Runtime &rt) {
            i16 s = rt.logRead(sum);
            for (u32 k = 0; k < 8; ++k)
                s = static_cast<i16>(s + rt.logRead(arr, k));
            rt.logWrite(sum, s);
            return kDone;
        });
        const TaskId t1 = prog.addTask("t1", [&](Runtime &rt) {
            for (u32 k = 0; k < 8; ++k)
                rt.logWrite(arr, k, static_cast<i16>(k * k + 1));
            return t2;
        });
        Scheduler sched(dev, prog);
        const auto res = sched.run(t1);
        ASSERT_TRUE(res.completed);
        out.clear();
        for (u32 k = 0; k < 8; ++k)
            out.push_back(arr.peek(k));
        out.push_back(sum.peek());
        ops = dev.stats().totalCycles(); // proxy; we sweep ops below
    };

    std::vector<i16> golden;
    u64 unused = 0;
    golden_run(new arch::ContinuousPower(), golden, unused);

    // Count draws with a huge injector (never fires).
    u64 total_draws = 0;
    {
        Device dev(EnergyProfile::msp430fr5994(),
                   std::make_unique<FailOnceAfterOps>(1u << 30));
        Program prog;
        NvArray<i16> arr(dev, 8, "a");
        NvVar<i16> sum(dev, "sum", 0);
        const TaskId t2 = prog.addTask("t2", [&](Runtime &rt) {
            i16 s = rt.logRead(sum);
            for (u32 k = 0; k < 8; ++k)
                s = static_cast<i16>(s + rt.logRead(arr, k));
            rt.logWrite(sum, s);
            return kDone;
        });
        const TaskId t1 = prog.addTask("t1", [&](Runtime &rt) {
            for (u32 k = 0; k < 8; ++k)
                rt.logWrite(arr, k, static_cast<i16>(k * k + 1));
            return t2;
        });
        Scheduler sched(dev, prog);
        ASSERT_TRUE(sched.run(t1).completed);
        // Each consume() is one draw; ask the supply.
        total_draws = static_cast<u64>(
            dev.power().harvestedNj() > 0 ? 0 : 0);
        // The injector counts ops internally; recover via describe().
        // Simpler: re-run and count consume calls through stats counts.
        u64 count = 0;
        const auto &stats = dev.stats();
        for (u32 o = 0; o < arch::kNumOps; ++o)
            count += stats.opCount(static_cast<arch::Op>(o));
        total_draws = count;
    }
    ASSERT_GT(total_draws, 50u);

    for (u64 n = 0; n < total_draws + 5; ++n) {
        Device dev(EnergyProfile::msp430fr5994(),
                   std::make_unique<FailOnceAfterOps>(n));
        Program prog;
        NvArray<i16> arr(dev, 8, "a");
        NvVar<i16> sum(dev, "sum", 0);
        const TaskId t2 = prog.addTask("t2", [&](Runtime &rt) {
            i16 s = rt.logRead(sum);
            for (u32 k = 0; k < 8; ++k)
                s = static_cast<i16>(s + rt.logRead(arr, k));
            rt.logWrite(sum, s);
            return kDone;
        });
        const TaskId t1 = prog.addTask("t1", [&](Runtime &rt) {
            for (u32 k = 0; k < 8; ++k)
                rt.logWrite(arr, k, static_cast<i16>(k * k + 1));
            return t2;
        });
        Scheduler sched(dev, prog);
        const auto res = sched.run(t1);
        ASSERT_TRUE(res.completed) << "failed at op " << n;
        std::vector<i16> state;
        for (u32 k = 0; k < 8; ++k)
            state.push_back(arr.peek(k));
        state.push_back(sum.peek());
        EXPECT_EQ(state, golden) << "divergence with failure at op "
                                 << n;
    }
}

/** Repeated periodic failures must also preserve the final state. */
class PeriodicFailureSweep : public ::testing::TestWithParam<u64>
{
};

TEST_P(PeriodicFailureSweep, StateMatchesGolden)
{
    const u64 period = GetParam();
    auto build_and_run = [&](std::unique_ptr<arch::PowerSupply> psu,
                             std::vector<i16> &out, bool &completed) {
        Device dev(EnergyProfile::msp430fr5994(), std::move(psu));
        Program prog;
        NvArray<i16> arr(dev, 6, "a");
        const TaskId t = prog.addTask("t", [&](Runtime &rt) {
            for (u32 k = 0; k < 6; ++k)
                rt.logWrite(arr, k,
                            static_cast<i16>(3 * k + 7));
            return kDone;
        });
        Scheduler sched(dev, prog);
        completed = sched.run(t).completed;
        out.clear();
        for (u32 k = 0; k < 6; ++k)
            out.push_back(arr.peek(k));
    };

    std::vector<i16> golden, state;
    bool ok = false;
    build_and_run(std::make_unique<ContinuousPower>(), golden, ok);
    ASSERT_TRUE(ok);
    build_and_run(std::make_unique<FailEveryOps>(period), state, ok);
    ASSERT_TRUE(ok);
    EXPECT_EQ(state, golden);
}

INSTANTIATE_TEST_SUITE_P(Periods, PeriodicFailureSweep,
                         ::testing::Values(29u, 37u, 53u, 71u, 97u,
                                           131u, 211u));

} // namespace
} // namespace sonic::task
