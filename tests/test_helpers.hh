/**
 * @file
 * Shared fixtures for kernel/integration tests: a tiny network that
 * exercises every device layer kind (factored conv with all stages,
 * pooling, pruned 2-D conv, sparse FC, dense FC) quickly enough for
 * exhaustive failure-injection sweeps.
 */

#ifndef SONIC_TESTS_TEST_HELPERS_HH
#define SONIC_TESTS_TEST_HELPERS_HH

#include "dnn/spec.hh"
#include "fixed/fixed.hh"
#include "tensor/sparse.hh"
#include "util/rng.hh"

namespace sonic::testutil
{

/**
 * Relative tolerance for comparing simulated energy/time totals that
 * were accumulated in different batching orders.
 *
 * Origin: PR 2's bulk charging books an n-element span as cost * n
 * (one f64 multiply) where per-element accounting summed cost n times
 * (n rounded additions), and per-layer/per-op report rows re-sum the
 * same buckets in a different association than the global total. Both
 * are pure f64 reassociation effects: logits, cycle counts and op
 * counts stay bit-exact. The largest observed instance is TAILS'
 * batched LEA format shifts, which drift the end-to-end energy total
 * by ~2e-16 relative against the per-op accumulation sequence; sums
 * over a few hundred report rows are bounded by ~n * 2^-52. 1e-12
 * covers every in-repo comparison of this class with orders of
 * magnitude to spare while still catching any real accounting bug
 * (the smallest charged op is ~1e-9 of a run's total).
 *
 * Use this named constant — not an ad-hoc epsilon — wherever two
 * accounting paths for the *same* simulated work are compared.
 */
inline constexpr f64 kBatchedEnergyRelTol = 1e-12;

/** Tiny all-layer-kinds network: input 1x8x8, 4 classes. */
inline dnn::NetworkSpec
tinyNet(u64 seed = 0x7e57)
{
    Rng rng(seed);
    dnn::NetworkSpec net;
    net.name = "tiny";
    net.input = {1, 8, 8};
    net.numClasses = 4;

    // Factored conv: col(3) x row(3) -> 2 channels, relu, pool.
    dnn::FactoredConvLayer f;
    f.col = {0.4, -0.2, 0.3};
    f.row = {0.5, 0.1, -0.3};
    f.scale = {0.8, -0.6};
    net.layers.push_back({"conv1", std::move(f), true, true});
    // Now 2 x 3 x 3.

    // Pruned 2-D conv: 3 x 2 x 2 x 2, half the taps pruned.
    tensor::FilterBank bank(3, 2, 2, 2);
    for (auto &w : bank.data)
        w = rng.gaussian(0.0, 0.4);
    tensor::Tensor3 flat(3, 2, 4);
    flat.data() = bank.data;
    tensor::pruneToFraction(flat, 0.5);
    bank.data = flat.data();
    net.layers.push_back({"conv2", dnn::SparseConvLayer{bank}, true,
                          false});
    // Now 3 x 2 x 2 = 12.

    // Sparse FC 6 x 12 (40% kept), relu.
    tensor::Matrix sfc = tensor::Matrix::gaussian(6, 12, rng, 0.35);
    tensor::pruneToFraction(sfc, 0.4);
    net.layers.push_back({"fc", dnn::SparseFcLayer{sfc}, true, false});

    // Dense FC 4 x 6.
    tensor::Matrix dfc = tensor::Matrix::gaussian(4, 6, rng, 0.35);
    net.layers.push_back({"fc", dnn::DenseFcLayer{dfc}, false, false});
    return net;
}

/** A deterministic Q7.8 input for the tiny network. */
inline std::vector<i16>
tinyInput(u64 seed = 0xcafe)
{
    Rng rng(seed);
    std::vector<i16> input;
    for (u32 i = 0; i < 64; ++i)
        input.push_back(
            fixed::Q78::fromFloat(rng.uniform(-1.0, 1.0)).raw());
    return input;
}

} // namespace sonic::testutil

#endif // SONIC_TESTS_TEST_HELPERS_HH
