/**
 * @file
 * Tests for the sense-infer-transmit pipeline subsystem: registry
 * semantics, radio attempt-energy arithmetic against the OpenChirp
 * profile, continuous-round behavior (logit equality with the bare
 * kernel, delivery accounting, give-up on a dead link), exhaustive
 * single-failure delivery idempotence (never lose, never duplicate),
 * lossy-link determinism under failures, and a small oracle battery
 * over every registered pipeline.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "arch/device.hh"
#include "dnn/device_net.hh"
#include "pipeline/pipeline.hh"
#include "tests/test_helpers.hh"
#include "verify/oracle.hh"

namespace sonic::pipeline
{
namespace
{

constexpr u64 kSeed = 0x909e57;

RoundOutcome
runTinyRound(const PipelineSpec &spec, kernels::Impl impl,
             std::unique_ptr<arch::PowerSupply> psu, u64 round = 0,
             u64 seed = kSeed)
{
    arch::Device dev(arch::EnergyProfile::msp430fr5994(),
                     std::move(psu));
    const auto net_spec = testutil::tinyNet();
    dnn::DeviceNetwork net(dev, net_spec);
    return runRound(net, impl, testutil::tinyInput(), spec, seed, round);
}

u64
countRoundOps(const PipelineSpec &spec, kernels::Impl impl)
{
    arch::Device dev(arch::EnergyProfile::msp430fr5994(),
                     std::make_unique<arch::ContinuousPower>());
    const auto net_spec = testutil::tinyNet();
    dnn::DeviceNetwork net(dev, net_spec);
    const auto out =
        runRound(net, impl, testutil::tinyInput(), spec, kSeed, 0);
    EXPECT_TRUE(out.completed);
    u64 ops = 0;
    for (u32 o = 0; o < arch::kNumOps; ++o)
        ops += dev.stats().opCount(static_cast<arch::Op>(o));
    return ops;
}

// --- Registry -------------------------------------------------------

TEST(PipelineRegistry, BuiltinsAreRegistered)
{
    auto &registry = PipelineRegistry::instance();
    for (const char *name : {"infer-only", "wildlife", "sense-infer",
                             "result-tx", "lossy-uplink"})
        EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_FALSE(registry.contains("no-such-pipeline"));

    const auto &wildlife = registry.get("wildlife");
    EXPECT_TRUE(wildlife.sense.enabled);
    EXPECT_TRUE(wildlife.radio.enabled);
    EXPECT_EQ(wildlife.radio.ackLossProbability, 0.0);
    EXPECT_FALSE(wildlife.inferOnly());
    EXPECT_TRUE(registry.get("infer-only").inferOnly());

    // Every registered name appears in the CLI help list.
    const auto list = registry.availableList();
    for (const auto &name : registry.names())
        EXPECT_NE(list.find(name), std::string::npos) << name;
}

TEST(PipelineRegistry, DuplicateAndUnknownNamesDie)
{
    PipelineSpec dup;
    dup.name = "wildlife";
    EXPECT_DEATH(PipelineRegistry::instance().add(dup),
                 "duplicate pipeline");
    EXPECT_DEATH(PipelineRegistry::instance().get("no-such-pipeline"),
                 "registered");
}

// --- Radio energy ---------------------------------------------------

TEST(RadioEnergy, OpenChirpImageAttemptMatchesPaper)
{
    const auto radio = arch::EnergyProfile::openChirpRadio();
    RadioConfig image;
    image.payloadBytes = 784; // one 28x28 8-bit image
    RadioConfig result;
    result.payloadBytes = 8; // one classified result

    // The paper's Sec. 3.2 numbers: ~23 J per image, result packets
    // ~98x cheaper. The attempt energy adds wake + ACK overhead, so
    // the ratio lands just under the payload-only 98x.
    const f64 image_j = attemptEnergyJ(image, radio);
    const f64 result_j = attemptEnergyJ(result, radio);
    EXPECT_NEAR(image_j, 23.0, 0.5);
    EXPECT_GT(image_j / result_j, 90.0);
    EXPECT_LT(image_j / result_j, 98.0);
}

TEST(RadioEnergy, AttemptEnergyScalesWithPayload)
{
    const auto profile = arch::EnergyProfile::msp430fr5994();
    RadioConfig small, big;
    small.payloadBytes = 4;
    big.payloadBytes = 64;
    const f64 overhead = profile.nanojoules(arch::Op::RadioWake) +
                         profile.nanojoules(arch::Op::RadioRxAck);
    const f64 per_byte = profile.nanojoules(arch::Op::RadioTxByte);
    EXPECT_NEAR(attemptEnergyJ(small, profile),
                (overhead + 4 * per_byte) * 1e-9, 1e-18);
    EXPECT_NEAR(attemptEnergyJ(big, profile),
                (overhead + 64 * per_byte) * 1e-9, 1e-18);
}

// --- Continuous rounds ----------------------------------------------

TEST(PipelineRound, ContinuousWildlifeDeliversWithKernelLogits)
{
    const auto &spec = PipelineRegistry::instance().get("wildlife");
    const auto out = runTinyRound(
        spec, kernels::Impl::Sonic,
        std::make_unique<arch::ContinuousPower>());
    ASSERT_TRUE(out.completed);
    EXPECT_FALSE(out.nonTerminating);
    EXPECT_TRUE(out.delivered);
    EXPECT_FALSE(out.txGaveUp);
    EXPECT_EQ(out.reboots, 0u);
    EXPECT_EQ(out.txAttempts, 1u);
    EXPECT_EQ(out.txFailedAttempts, 0u);
    EXPECT_EQ(out.backoffSeconds, 0.0);

    // The sense stage lands the sample exactly where loadInput would:
    // the pipeline's logits are the bare kernel's, bit for bit.
    const auto bare = runTinyRound(
        PipelineRegistry::instance().get("infer-only"),
        kernels::Impl::Sonic, std::make_unique<arch::ContinuousPower>());
    ASSERT_TRUE(bare.completed);
    EXPECT_EQ(out.logits, bare.logits);
    EXPECT_EQ(out.resultClass, bare.resultClass);
    ASSERT_GE(out.resultClass, 0);
    EXPECT_EQ(out.logits[static_cast<u32>(out.resultClass)],
              *std::max_element(out.logits.begin(), out.logits.end()));
}

TEST(PipelineRound, SenseStageChargesSenseOps)
{
    arch::Device dev(arch::EnergyProfile::msp430fr5994(),
                     std::make_unique<arch::ContinuousPower>());
    const auto net_spec = testutil::tinyNet();
    dnn::DeviceNetwork net(dev, net_spec);
    const auto &spec = PipelineRegistry::instance().get("wildlife");
    const auto out =
        runRound(net, kernels::Impl::Sonic, testutil::tinyInput(), spec,
                 kSeed, 0);
    ASSERT_TRUE(out.completed);
    // One SenseSample per input element, one full radio attempt.
    EXPECT_EQ(dev.stats().opCount(arch::Op::SenseSample), 64u);
    EXPECT_EQ(dev.stats().opCount(arch::Op::RadioWake), 1u);
    EXPECT_EQ(dev.stats().opCount(arch::Op::RadioTxByte),
              spec.radio.payloadBytes);
    EXPECT_EQ(dev.stats().opCount(arch::Op::RadioRxAck), 1u);
}

TEST(PipelineRound, DeadLinkGivesUpAfterMaxAttempts)
{
    PipelineSpec spec;
    spec.name = "dead-link";
    spec.radio.enabled = true;
    spec.radio.payloadBytes = 8;
    spec.radio.maxAttempts = 2;
    spec.radio.ackLossProbability = 1.0;
    spec.radio.backoffSeconds = 0.5;
    spec.radio.backoffMultiplier = 2.0;

    const auto out = runTinyRound(
        spec, kernels::Impl::Sonic,
        std::make_unique<arch::ContinuousPower>());
    ASSERT_TRUE(out.completed);
    EXPECT_FALSE(out.delivered);
    EXPECT_TRUE(out.txGaveUp);
    EXPECT_EQ(out.txAttempts, 2u);
    EXPECT_EQ(out.txFailedAttempts, 2u);
    // Exponential backoff: 0.5 + 1.0.
    EXPECT_DOUBLE_EQ(out.backoffSeconds, 1.5);
    // The result itself still committed (it can be read locally).
    EXPECT_GE(out.resultClass, 0);
}

// --- Delivery idempotence under failures ----------------------------

/**
 * The tentpole property: a power failure at *every* operation index of
 * a wildlife round must neither lose nor duplicate the delivery, and
 * must leave logits and TX accounting bit-identical to the continuous
 * round. This sweeps the new atomicity surface exhaustively — sense
 * chunk boundaries, the result-commit write, every byte of the radio
 * attempt, and the ACK-commit write.
 */
TEST(PipelineDelivery, SurvivesFailureAtEveryOperation)
{
    const auto &spec = PipelineRegistry::instance().get("wildlife");
    const auto golden = runTinyRound(
        spec, kernels::Impl::Sonic,
        std::make_unique<arch::ContinuousPower>());
    ASSERT_TRUE(golden.completed);
    ASSERT_TRUE(golden.delivered);

    const u64 total = countRoundOps(spec, kernels::Impl::Sonic);
    ASSERT_GT(total, 1000u);
    for (u64 n = 0; n < total + 3; ++n) {
        const auto out = runTinyRound(
            spec, kernels::Impl::Sonic,
            std::make_unique<arch::FailOnceAfterOps>(n));
        ASSERT_TRUE(out.completed) << "failure at op " << n;
        ASSERT_TRUE(out.delivered) << "delivery lost, failure at op "
                                   << n;
        ASSERT_EQ(out.txAttempts, golden.txAttempts)
            << "attempt accounting diverged, failure at op " << n;
        ASSERT_EQ(out.txFailedAttempts, golden.txFailedAttempts);
        ASSERT_EQ(out.logits, golden.logits)
            << "logit divergence, failure at op " << n;
        ASSERT_EQ(out.resultClass, golden.resultClass);
    }
}

TEST(PipelineDelivery, LossyLinkAccountingMatchesContinuous)
{
    // ACK loss is a pure function of (seed, round, attempt), so an
    // interrupted attempt re-executes with the identical outcome:
    // intermittent delivery accounting equals the continuous run's,
    // round by round, including rounds that give up.
    const auto &spec = PipelineRegistry::instance().get("lossy-uplink");
    const u64 total = countRoundOps(spec, kernels::Impl::Tile8);
    for (u64 round = 0; round < 6; ++round) {
        const auto golden = runTinyRound(
            spec, kernels::Impl::Tile8,
            std::make_unique<arch::ContinuousPower>(), round);
        ASSERT_TRUE(golden.completed);
        for (u64 n = total / 3; n < total + 2; n += total / 3) {
            const auto out = runTinyRound(
                spec, kernels::Impl::Tile8,
                std::make_unique<arch::FailOnceAfterOps>(n), round);
            ASSERT_TRUE(out.completed) << "round " << round;
            ASSERT_EQ(out.delivered, golden.delivered)
                << "round " << round << " failure at op " << n;
            ASSERT_EQ(out.txAttempts, golden.txAttempts);
            ASSERT_EQ(out.txFailedAttempts, golden.txFailedAttempts);
            ASSERT_EQ(out.txGaveUp, golden.txGaveUp);
            ASSERT_DOUBLE_EQ(out.backoffSeconds, golden.backoffSeconds);
        }
    }
}

TEST(PipelineDelivery, LossyLinkEventuallyDropsAndRetries)
{
    // Sanity that the lossy built-in actually exercises both regimes
    // across rounds: some rounds retry, and accounting is consistent.
    const auto &spec = PipelineRegistry::instance().get("lossy-uplink");
    u32 retried = 0, delivered = 0;
    for (u64 round = 0; round < 24; ++round) {
        const auto out = runTinyRound(
            spec, kernels::Impl::Sonic,
            std::make_unique<arch::ContinuousPower>(), round);
        ASSERT_TRUE(out.completed);
        retried += out.txFailedAttempts > 0;
        delivered += out.delivered;
        if (out.delivered)
            EXPECT_EQ(out.txAttempts, out.txFailedAttempts + 1);
        else
            EXPECT_TRUE(out.txGaveUp);
    }
    EXPECT_GT(retried, 0u);
    EXPECT_GT(delivered, 12u); // 25% loss: most rounds deliver
}

// --- Oracle integration ---------------------------------------------

TEST(PipelineOracle, MixedBatteryGreenForEveryPipeline)
{
    for (const auto &name : PipelineRegistry::instance().names()) {
        for (const auto impl :
             {kernels::Impl::Sonic, kernels::Impl::Tile8}) {
            verify::PipelineWorkload workload;
            workload.base.net = testutil::tinyNet();
            workload.base.input = testutil::tinyInput();
            workload.base.impl = impl;
            workload.spec = PipelineRegistry::instance().get(name);
            const auto report =
                verify::verifyPipelineLocal(workload, 12, 0xf1ee7);
            EXPECT_TRUE(report.ok())
                << name << " x " << kernels::implName(impl) << ": "
                << (report.divergences.empty()
                        ? ""
                        : report.divergences.front().reason);
        }
    }
}

TEST(PipelineOracle, TxBoundaryTraceSeesEveryBoundary)
{
    verify::PipelineWorkload workload;
    workload.base.net = testutil::tinyNet();
    workload.base.input = testutil::tinyInput();
    workload.base.impl = kernels::Impl::Sonic;
    workload.spec = PipelineRegistry::instance().get("wildlife");
    u64 total = 0;
    const auto boundaries = verify::recordTxBoundaryTrace(
        workload, &total);
    // Lossless wildlife: one result commit + one ACK commit.
    ASSERT_EQ(boundaries.size(), 2u);
    EXPECT_LT(boundaries[0], boundaries[1]);
    EXPECT_LT(boundaries[1], total);
}

} // namespace
} // namespace sonic::pipeline
