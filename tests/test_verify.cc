/**
 * @file
 * Tests for the adversarial intermittence oracle (src/verify): the
 * schedule-driven power supply, seeded schedule generators, commit
 * tracing, NVM snapshot chains, the differential oracle with ddmin
 * shrinking (including the acceptance battery: >= 1000 schedules
 * across Base/Tile-8/Tile-32/SONIC/TAILS with zero divergences, and a
 * deliberately broken SONIC caught and shrunk to a tiny schedule), the
 * engine-parallel path, and the committed golden digest file.
 */

#include <algorithm>
#include <fstream>
#include <optional>
#include <sstream>

#include <gtest/gtest.h>

#include "verify/oracle.hh"
#include "verify/workload.hh"

namespace sonic::verify
{
namespace
{

LocalWorkload
goldenWorkload(kernels::Impl impl)
{
    LocalWorkload w;
    w.net = goldenNet();
    w.input = goldenInput();
    w.impl = impl;
    return w;
}

/** RAII around the injected SONIC fault so no assertion exit can leak
 * the broken kernel into later tests. */
struct UndoLogFaultGuard
{
    UndoLogFaultGuard()
    {
        kernels::testhooks::sonicDisableUndoLogging = true;
    }

    ~UndoLogFaultGuard()
    {
        kernels::testhooks::sonicDisableUndoLogging = false;
    }
};

// --- Schedule generators --------------------------------------------

TEST(ScheduleGen, DeterministicBoundedAndSorted)
{
    ScheduleGenConfig config;
    config.seed = 42;
    config.opHorizon = 10'000;
    config.maxFailures = 8;

    const auto a = uniformSchedules(50, config);
    const auto b = uniformSchedules(50, config);
    ASSERT_EQ(a.size(), 50u);
    EXPECT_EQ(a, b); // same seed, same battery
    for (const auto &schedule : a) {
        ASSERT_FALSE(schedule.empty());
        EXPECT_LE(schedule.size(), 8u);
        for (u64 i = 0; i < schedule.size(); ++i) {
            EXPECT_LT(schedule[i], config.opHorizon);
            if (i > 0)
                EXPECT_LT(schedule[i - 1], schedule[i]);
        }
    }

    config.seed = 43;
    EXPECT_NE(uniformSchedules(50, config), a);
}

TEST(ScheduleGen, FailureCountClampedBelowNoProgressThreshold)
{
    // Even an absurd request stays far below the scheduler's
    // maxFailuresWithoutProgress (48), so generated schedules can
    // never produce a legitimate non-termination verdict.
    ScheduleGenConfig config;
    config.opHorizon = 1'000'000;
    config.maxFailures = 10'000;
    for (const auto &schedule : burstySchedules(100, config))
        EXPECT_LE(schedule.size(), 40u);
    for (const auto &schedule : uniformSchedules(100, config))
        EXPECT_LE(schedule.size(), 40u);
}

TEST(ScheduleGen, CommitTargetedLandsNearCommits)
{
    const std::vector<u64> commits = {100, 5'000, 20'000};
    ScheduleGenConfig config;
    config.opHorizon = 30'000;
    const auto schedules =
        commitTargetedSchedules(40, commits, config);
    for (const auto &schedule : schedules) {
        for (u64 index : schedule) {
            bool near = false;
            for (u64 commit : commits)
                near |= index >= commit && index < commit + 8;
            EXPECT_TRUE(near) << index;
        }
    }
}

// --- Commit tracing -------------------------------------------------

TEST(CommitTrace, RecordsMonotoneInHorizonCommits)
{
    const auto workload = goldenWorkload(kernels::Impl::Sonic);
    u64 draws = 0;
    const auto commits = recordCommitTrace(workload, &draws);
    ASSERT_GT(draws, 1000u);
    ASSERT_GT(commits.size(), 5u); // one per task transition
    for (u64 i = 0; i < commits.size(); ++i) {
        EXPECT_LT(commits[i], draws);
        if (i > 0)
            EXPECT_LE(commits[i - 1], commits[i]);
    }
}

// --- NVM snapshot chains --------------------------------------------

TEST(SnapshotChain, OneDigestPerRebootAndDeterministic)
{
    const auto workload = goldenWorkload(kernels::Impl::Sonic);
    const Schedule schedule = {200, 900, 1400};
    const auto a = runSchedule(workload, schedule, true);
    const auto b = runSchedule(workload, schedule, true);
    ASSERT_TRUE(a.completed);
    EXPECT_EQ(a.fired, schedule.size());
    EXPECT_EQ(a.reboots, a.fired);
    EXPECT_EQ(a.rebootDigests.size(), a.reboots);
    // Bit-identical replay, including the digest chain.
    EXPECT_EQ(a.rebootDigests, b.rebootDigests);
    EXPECT_EQ(a.finalNvmDigest, b.finalNvmDigest);
    EXPECT_EQ(a.logits, b.logits);

    // A distant failure placement snapshots different FRAM state.
    const auto c = runSchedule(workload, {1200, 1900, 2400}, true);
    EXPECT_NE(a.rebootDigests, c.rebootDigests);
}

TEST(SnapshotChain, RecoveryRestoresTheContinuousFinalState)
{
    // SONIC's recovery re-derives identical values everywhere, so the
    // final FRAM image matches continuous power bit-for-bit.
    const auto workload = goldenWorkload(kernels::Impl::Sonic);
    const auto cont = runSchedule(workload, {}, true);
    const auto inter = runSchedule(workload, {137, 138, 2000}, true);
    ASSERT_TRUE(inter.completed);
    EXPECT_EQ(inter.logits, cont.logits);
    EXPECT_EQ(inter.finalNvmDigest, cont.finalNvmDigest);
}

// --- The oracle acceptance battery ----------------------------------

/**
 * >= 1000 schedules with a fixed seed across the five acceptance
 * kernels: every crash-consistent kernel must be indistinguishable
 * from continuous power under every schedule; Base must replay
 * deterministically. Zero divergences.
 */
TEST(Oracle, GrandSweepZeroDivergences)
{
    const kernels::Impl impls[] = {
        kernels::Impl::Base, kernels::Impl::Tile8,
        kernels::Impl::Tile32, kernels::Impl::Sonic,
        kernels::Impl::Tails};
    u64 total_schedules = 0;
    for (const auto impl : impls) {
        const auto *info = kernels::ImplRegistry::instance().find(impl);
        const auto workload = goldenWorkload(impl);
        u64 draws = 0;
        const auto commits = recordCommitTrace(workload, &draws);

        ScheduleGenConfig gen;
        gen.seed = 0x5eed1000 + static_cast<u64>(impl);
        gen.opHorizon = draws;
        gen.maxFailures = 8;
        const auto schedules = mixedSchedules(200, commits, gen);
        total_schedules += schedules.size();

        OracleOptions options;
        options.crashConsistent = info->crashConsistent;
        // The final FRAM image is part of the property for the purely
        // software kernels; TAILS' calibration registers (tile words,
        // attempt flags) legitimately depend on where failures land,
        // so only its logits are held to the reference.
        options.checkFinalNvmDigest = impl != kernels::Impl::Tails;
        Oracle oracle(localRunner(workload), options);
        const auto report = oracle.verify(schedules);
        EXPECT_TRUE(report.ok())
            << info->name << ": " << report.divergences.size()
            << " divergences, first: "
            << (report.ok()
                    ? std::string()
                    : report.divergences.front().reason);
        EXPECT_GT(report.totalFired, 0u) << info->name;
        EXPECT_EQ(report.totalReboots, report.totalFired)
            << info->name;
    }
    EXPECT_GE(total_schedules, 1000u);
}

/**
 * The oracle must catch a real crash-consistency bug: SONIC with its
 * sparse undo-logging disabled double-applies a tap when a failure
 * lands between the in-place store and the index advance. The fuzz
 * battery finds it and ddmin shrinks the counterexample to at most 3
 * failure indices (typically 1).
 */
TEST(Oracle, BrokenSonicCaughtAndShrunk)
{
    const auto workload = goldenWorkload(kernels::Impl::Sonic);
    u64 draws = 0;
    const auto commits = recordCommitTrace(workload, &draws);

    OracleReport report;
    {
        UndoLogFaultGuard fault;
        ScheduleGenConfig gen;
        gen.seed = 0xbad5eed;
        gen.opHorizon = draws;
        gen.maxFailures = 8;
        const auto schedules = mixedSchedules(300, commits, gen);

        Oracle oracle(localRunner(workload), {});
        report = oracle.verify(schedules);
    }

    ASSERT_FALSE(report.ok())
        << "oracle failed to catch disabled undo-logging";
    const auto good = runSchedule(workload, {}, false);
    for (const auto &d : report.divergences) {
        EXPECT_LE(d.shrunk.size(), 3u);
        ASSERT_FALSE(d.shrunk.empty());
        // The shrunk schedule is a genuine standalone counterexample.
        UndoLogFaultGuard fault;
        const auto replay = runSchedule(workload, d.shrunk, true);
        EXPECT_TRUE(!replay.completed || replay.logits != good.logits);
    }

    // And the fixed kernel passes the exact schedules that broke the
    // faulty one.
    Oracle fixed(localRunner(workload), {});
    std::vector<Schedule> broken_schedules;
    for (const auto &d : report.divergences)
        broken_schedules.push_back(d.schedule);
    EXPECT_TRUE(fixed.verify(broken_schedules).ok());
}

TEST(Oracle, ShrinkStripsBenignIndicesFromAMixedSchedule)
{
    // Find one minimal failing index under the broken kernel, bury it
    // in padding, and check ddmin digs a tiny counterexample back out.
    const auto workload = goldenWorkload(kernels::Impl::Sonic);
    UndoLogFaultGuard fault;
    Oracle oracle(localRunner(workload), {});

    std::optional<u64> bad;
    u64 draws = 0;
    recordCommitTrace(workload, &draws);
    for (u64 i = 0; i < draws && !bad; ++i) {
        const Schedule probe = {i};
        if (oracle.judge(probe, runSchedule(workload, probe, true)))
            bad = i;
    }
    ASSERT_TRUE(bad.has_value());

    // Padding strictly after the failing index: failures before it
    // would shift the op stream and could mask the window.
    const Schedule padded = {*bad, *bad + 997, *bad + 2003,
                             *bad + 3001};
    ASSERT_TRUE(
        oracle.judge(padded, runSchedule(workload, padded, true)));
    const auto shrunk = oracle.shrink(padded);
    EXPECT_LT(shrunk.size(), padded.size());
    EXPECT_LE(shrunk.size(), 2u);
    // Shrinking never invents indices.
    for (u64 index : shrunk)
        EXPECT_TRUE(std::find(padded.begin(), padded.end(), index)
                    != padded.end());
}

// --- Engine-parallel path -------------------------------------------

TEST(Oracle, EngineFanOutMatchesLocalJudgment)
{
    app::Engine engine(app::EngineOptions{4});
    EngineOracleConfig config;
    config.net = "HAR";
    config.impl = kernels::Impl::Sonic;
    config.schedules = 24;
    config.seed = 0xfa11;
    const auto report = verifyWithEngine(engine, config);
    EXPECT_TRUE(report.ok())
        << report.divergences.size() << " divergences, first: "
        << (report.ok() ? std::string()
                        : report.divergences.front().reason);
    EXPECT_EQ(report.schedulesRun, 24u);
    EXPECT_EQ(report.impl, "SONIC");
    EXPECT_EQ(report.workload, "HAR");
    EXPECT_GT(report.totalFired, 0u);
}

TEST(Oracle, ReportJsonCarriesShrunkCounterexample)
{
    OracleReport report;
    report.impl = "SONIC";
    report.workload = "golden";
    report.schedulesRun = 3;
    Divergence d;
    d.schedule = {5, 9, 12};
    d.shrunk = {9};
    d.reason = "logits diverge from the continuous reference";
    d.observed.completed = true;
    d.observed.rebootDigests = {0xabcdu};
    report.divergences.push_back(d);
    const std::string json = reportJson(report);
    EXPECT_NE(json.find("\"shrunk\": [9]"), std::string::npos);
    EXPECT_NE(json.find("logits diverge"), std::string::npos);
    EXPECT_NE(json.find("\"schedule\": [5, 9, 12]"),
              std::string::npos);
}

// --- Golden digest file ---------------------------------------------

TEST(Golden, CommittedFileMatchesRegeneration)
{
    // Byte-exact comparison: any change to a kernel's intermittent
    // semantics (op stream, reboot recovery, FRAM state) shows up as
    // a golden diff. Refresh intentionally with:
    //   sonic_oracle --emit-golden=tests/golden/golden_net.json
    const std::string path =
        std::string(SONIC_GOLDEN_DIR) + "/golden_net.json";
    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path;
    std::ostringstream stored;
    stored << in.rdbuf();
    EXPECT_EQ(stored.str(), goldenJson())
        << "golden digests diverge; refresh with sonic_oracle "
           "--emit-golden if the change is intentional";
}

} // namespace
} // namespace sonic::verify
