/**
 * @file
 * Tests for the TAILS substrate: the LEA/DMA model's arithmetic
 * (FIR-DTC, dot products, format shifts), its buffer constraints, and
 * energy accounting.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "arch/memory.hh"
#include "fixed/fixed.hh"
#include "tails/lea.hh"
#include "util/rng.hh"

namespace sonic::tails
{
namespace
{

using arch::ContinuousPower;
using arch::Device;
using arch::EnergyProfile;
using arch::NvArray;
using arch::Op;
using fixed::Q78;

Device
continuousDevice()
{
    return Device(EnergyProfile::msp430fr5994(),
                  std::make_unique<ContinuousPower>());
}

/** Scalar model of the LEA pipeline for cross-checking. */
i16
scalarFir(const std::vector<i16> &src, u32 base,
          const std::vector<i16> &coeffs, u32 j)
{
    i64 acc = 0;
    for (u32 k = 0; k < coeffs.size(); ++k)
        acc += (i64{src[base + j + k]} << kPreShiftBits)
             * i64{coeffs[k]};
    acc >>= 15;
    acc <<= kPostShiftBits;
    if (acc > 32767)
        acc = 32767;
    if (acc < -32768)
        acc = -32768;
    return static_cast<i16>(acc);
}

TEST(Lea, FirMatchesScalarModel)
{
    auto dev = continuousDevice();
    LeaUnit lea(dev);
    Rng rng(1);
    NvArray<i16> src(dev, 32, "src");
    std::vector<i16> host(32);
    for (u32 i = 0; i < 32; ++i) {
        host[i] = Q78::fromFloat(rng.uniform(-1.0, 1.0)).raw();
        src.poke(i, host[i]);
    }
    std::vector<i16> coeffs = {Q78::fromFloat(0.5).raw(),
                               Q78::fromFloat(-0.25).raw(),
                               Q78::fromFloat(0.125).raw()};
    NvArray<i16> dst(dev, 30, "dst");
    lea.firDtc(src, 0, 32, coeffs, dst, 0, 30, nullptr, 0);
    for (u32 j = 0; j < 30; ++j)
        EXPECT_EQ(dst.peek(j), scalarFir(host, 0, coeffs, j)) << j;
}

TEST(Lea, FirApproximatesFloatConvolution)
{
    auto dev = continuousDevice();
    LeaUnit lea(dev);
    Rng rng(2);
    NvArray<i16> src(dev, 24, "src");
    std::vector<f64> x(24);
    for (u32 i = 0; i < 24; ++i) {
        x[i] = rng.uniform(-1.0, 1.0);
        src.poke(i, Q78::fromFloat(x[i]).raw());
    }
    std::vector<f64> w = {0.7, -0.3, 0.2, 0.1};
    std::vector<i16> coeffs;
    for (f64 v : w)
        coeffs.push_back(Q78::fromFloat(v).raw());
    NvArray<i16> dst(dev, 21, "dst");
    lea.firDtc(src, 0, 24, coeffs, dst, 0, 21, nullptr, 0);
    for (u32 j = 0; j < 21; ++j) {
        f64 want = 0;
        for (u32 k = 0; k < 4; ++k)
            want += w[k] * x[j + k];
        // LEA renormalizes with a truncating >> 15 before the
        // software << 4 post-shift, so the output step is 1/16 — the
        // very fixed-point pain the paper's Sec. 9.2 describes.
        EXPECT_NEAR(Q78::fromRaw(dst.peek(j)).toFloat(), want, 0.1)
            << j;
    }
}

TEST(Lea, FirAccumulatesPartial)
{
    auto dev = continuousDevice();
    LeaUnit lea(dev);
    NvArray<i16> src(dev, 8, "src");
    for (u32 i = 0; i < 8; ++i)
        src.poke(i, Q78::fromFloat(0.5).raw());
    std::vector<i16> coeffs = {Q78::fromFloat(1.0).raw()};
    NvArray<i16> partial(dev, 8, "partial");
    for (u32 i = 0; i < 8; ++i)
        partial.poke(i, Q78::fromFloat(1.0).raw());
    NvArray<i16> dst(dev, 8, "dst");
    lea.firDtc(src, 0, 8, coeffs, dst, 0, 8, &partial, 0);
    for (u32 i = 0; i < 8; ++i)
        EXPECT_NEAR(Q78::fromRaw(dst.peek(i)).toFloat(), 1.5, 0.02);
}

TEST(Lea, FirIdempotentReplay)
{
    auto dev = continuousDevice();
    LeaUnit lea(dev);
    Rng rng(3);
    NvArray<i16> src(dev, 16, "src");
    for (u32 i = 0; i < 16; ++i)
        src.poke(i, Q78::fromFloat(rng.uniform(-1.0, 1.0)).raw());
    std::vector<i16> coeffs = {Q78::fromFloat(0.3).raw(),
                               Q78::fromFloat(0.4).raw()};
    NvArray<i16> dst(dev, 15, "dst");
    lea.firDtc(src, 0, 16, coeffs, dst, 0, 15, nullptr, 0);
    std::vector<i16> first(15);
    for (u32 i = 0; i < 15; ++i)
        first[i] = dst.peek(i);
    lea.firDtc(src, 0, 16, coeffs, dst, 0, 15, nullptr, 0); // replay
    for (u32 i = 0; i < 15; ++i)
        EXPECT_EQ(dst.peek(i), first[i]);
}

TEST(Lea, DotProductStrided)
{
    auto dev = continuousDevice();
    LeaUnit lea(dev);
    NvArray<i16> src(dev, 12, "src");
    // Values at stride 4: src[1], src[5], src[9].
    src.poke(1, Q78::fromFloat(1.0).raw());
    src.poke(5, Q78::fromFloat(2.0).raw());
    src.poke(9, Q78::fromFloat(-1.0).raw());
    std::vector<i16> coeffs = {Q78::fromFloat(0.5).raw(),
                               Q78::fromFloat(0.25).raw(),
                               Q78::fromFloat(1.0).raw()};
    const i16 out = lea.dotProduct(coeffs, src, 1, 4);
    EXPECT_NEAR(Q78::fromRaw(out).toFloat(),
                0.5 * 1.0 + 0.25 * 2.0 + 1.0 * -1.0, 0.03);
}

TEST(Lea, DotProductFramContiguous)
{
    auto dev = continuousDevice();
    LeaUnit lea(dev);
    NvArray<i16> w(dev, 4, "w");
    NvArray<i16> x(dev, 4, "x");
    const f64 wv[] = {0.5, -0.5, 1.0, 0.25};
    const f64 xv[] = {1.0, 2.0, 0.5, -1.0};
    f64 want = 0;
    for (u32 i = 0; i < 4; ++i) {
        w.poke(i, Q78::fromFloat(wv[i]).raw());
        x.poke(i, Q78::fromFloat(xv[i]).raw());
        want += wv[i] * xv[i];
    }
    const i16 out = lea.dotProductFram(w, 0, x, 0, 4);
    EXPECT_NEAR(Q78::fromRaw(out).toFloat(), want, 0.03);
}

TEST(Lea, ChargesDmaShiftsAndMacs)
{
    auto dev = continuousDevice();
    LeaUnit lea(dev);
    NvArray<i16> src(dev, 16, "src");
    std::vector<i16> coeffs = {256, 128};
    NvArray<i16> dst(dev, 15, "dst");
    lea.firDtc(src, 0, 16, coeffs, dst, 0, 15, nullptr, 0);
    const auto &stats = dev.stats();
    EXPECT_EQ(stats.opCount(Op::LeaInvoke), 1u);
    EXPECT_EQ(stats.opCount(Op::LeaMac), u64{15} * 2);
    // DMA: (in 16 + taps 2) + out 15.
    EXPECT_EQ(stats.opCount(Op::DmaWord), u64{16 + 2 + 15});
    // Shifts: 16 pre-shifts x 3 bits + 15 post-shifts x 4 bits.
    EXPECT_EQ(stats.opCount(Op::AluShift), u64{16 * 3 + 15 * 4});
}

TEST(Lea, SramBufferAccounted)
{
    auto dev = continuousDevice();
    EXPECT_EQ(dev.sramBytesUsed(), 0u);
    {
        LeaUnit lea(dev);
        EXPECT_EQ(dev.sramBytesUsed(), u64{kLeaBufferWords} * 2);
    }
    EXPECT_EQ(dev.sramBytesUsed(), 0u);
}

TEST(Lea, SaturatesInsteadOfWrapping)
{
    auto dev = continuousDevice();
    LeaUnit lea(dev);
    NvArray<i16> src(dev, 4, "src");
    for (u32 i = 0; i < 4; ++i)
        src.poke(i, Q78::fromFloat(100.0).raw());
    std::vector<i16> coeffs(4, Q78::fromFloat(100.0).raw());
    NvArray<i16> dst(dev, 1, "dst");
    lea.firDtc(src, 0, 4, coeffs, dst, 0, 1, nullptr, 0);
    EXPECT_EQ(dst.peek(0), 32767);
}

} // namespace
} // namespace sonic::tails
