/**
 * @file
 * The central correctness property of the paper: intermittent
 * execution must be indistinguishable from continuous execution.
 *
 *  - Exhaustive single-failure sweep: SONIC on the tiny network with a
 *    power failure injected at *every* operation index produces
 *    bit-identical logits (this is the idempotence proof-by-testing of
 *    loop continuation, loop-ordered buffering, and sparse
 *    undo-logging).
 *  - Periodic-failure sweeps for SONIC, TAILS, and Tile-8 at several
 *    failure periods.
 *  - Capacitor runs of the real workloads: SONIC/TAILS complete with
 *    many reboots and bit-identical output; Base and Tile-128 are
 *    reported non-terminating at 100 uF; Tile-32 dies on MNIST only.
 */

#include <gtest/gtest.h>

#include "app/engine.hh"
#include "dnn/device_net.hh"
#include "kernels/runner.hh"
#include "tails/tails.hh"
#include "tests/test_helpers.hh"

namespace sonic::kernels
{
namespace
{

/** Shared engine so workload caches warm once per test binary. */
app::Engine &
testEngine()
{
    static app::Engine engine;
    return engine;
}

std::vector<i16>
runTinyWith(Impl impl, std::unique_ptr<arch::PowerSupply> psu,
            bool *completed = nullptr, u64 *reboots = nullptr)
{
    arch::Device dev(arch::EnergyProfile::msp430fr5994(),
                     std::move(psu));
    const auto spec = testutil::tinyNet();
    dnn::DeviceNetwork net(dev, spec);
    net.loadInput(testutil::tinyInput());
    const auto res = runInference(net, impl);
    if (completed != nullptr)
        *completed = res.completed;
    if (reboots != nullptr)
        *reboots = res.reboots;
    return res.logits;
}

u64
countTinyOps(Impl impl)
{
    arch::Device dev(arch::EnergyProfile::msp430fr5994(),
                     std::make_unique<arch::ContinuousPower>());
    const auto spec = testutil::tinyNet();
    dnn::DeviceNetwork net(dev, spec);
    net.loadInput(testutil::tinyInput());
    EXPECT_TRUE(runInference(net, impl).completed);
    u64 ops = 0;
    for (u32 o = 0; o < arch::kNumOps; ++o)
        ops += dev.stats().opCount(static_cast<arch::Op>(o));
    return ops;
}

TEST(Intermittent, SonicSurvivesFailureAtEveryOperation)
{
    const auto golden =
        runTinyWith(Impl::Sonic,
                    std::make_unique<arch::ContinuousPower>());
    const u64 total = countTinyOps(Impl::Sonic);
    ASSERT_GT(total, 1000u);

    for (u64 n = 0; n < total + 3; ++n) {
        bool completed = false;
        const auto logits = runTinyWith(
            Impl::Sonic, std::make_unique<arch::FailOnceAfterOps>(n),
            &completed);
        ASSERT_TRUE(completed) << "failure at op " << n;
        ASSERT_EQ(logits, golden) << "divergence, failure at op " << n;
    }
}

TEST(Intermittent, TailsSurvivesSampledSingleFailures)
{
    const auto golden = runTinyWith(
        Impl::Tails, std::make_unique<arch::ContinuousPower>());
    const u64 total = countTinyOps(Impl::Tails);
    // Sample densely (every 7th op) — TAILS ops are coarser batches.
    for (u64 n = 0; n < total + 3; n += 7) {
        bool completed = false;
        const auto logits = runTinyWith(
            Impl::Tails, std::make_unique<arch::FailOnceAfterOps>(n),
            &completed);
        ASSERT_TRUE(completed) << "failure at op " << n;
        ASSERT_EQ(logits, golden) << "divergence, failure at op " << n;
    }
}

TEST(Intermittent, Tile8SurvivesSampledSingleFailures)
{
    const auto golden = runTinyWith(
        Impl::Tile8, std::make_unique<arch::ContinuousPower>());
    const u64 total = countTinyOps(Impl::Tile8);
    for (u64 n = 0; n < total + 3; n += 11) {
        bool completed = false;
        const auto logits = runTinyWith(
            Impl::Tile8, std::make_unique<arch::FailOnceAfterOps>(n),
            &completed);
        ASSERT_TRUE(completed) << "failure at op " << n;
        ASSERT_EQ(logits, golden) << "divergence, failure at op " << n;
    }
}

/** Periodic failures with assorted prime periods. */
class PeriodicSweep
    : public ::testing::TestWithParam<std::tuple<int, u64>>
{
};

TEST_P(PeriodicSweep, BitIdenticalUnderRepeatedFailures)
{
    const auto impl = static_cast<Impl>(std::get<0>(GetParam()));
    const u64 period = std::get<1>(GetParam());
    // An implementation can only tolerate failure periods longer than
    // its largest atomic unit: a whole task for Tile-8 (the paper's
    // non-termination condition), one FIR row for TAILS. SONIC's unit
    // is a single loop iteration.
    const u64 min_period = impl == Impl::Tile8 ? 521
        : impl == Impl::Tails              ? 127
                                           : 0;
    if (period < min_period)
        GTEST_SKIP();
    const auto golden = runTinyWith(
        impl, std::make_unique<arch::ContinuousPower>());
    bool completed = false;
    u64 reboots = 0;
    const auto logits =
        runTinyWith(impl, std::make_unique<arch::FailEveryOps>(period),
                    &completed, &reboots);
    ASSERT_TRUE(completed);
    EXPECT_GT(reboots, 0u);
    EXPECT_EQ(logits, golden);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PeriodicSweep,
    ::testing::Combine(
        ::testing::Values(static_cast<int>(Impl::Sonic),
                          static_cast<int>(Impl::Tails),
                          static_cast<int>(Impl::Tile8)),
        ::testing::Values(u64{61}, u64{127}, u64{257}, u64{521},
                          u64{1031}, u64{2053})));

TEST(Intermittent, HarSonicCapacitorBitIdentical)
{
    app::RunSpec spec;
    spec.net = "HAR";
    spec.impl = Impl::Sonic;
    spec.power = app::PowerKind::Continuous;
    const auto cont = testEngine().runOne(spec);
    ASSERT_TRUE(cont.completed);

    spec.power = app::PowerKind::Cap100uF;
    const auto inter = testEngine().runOne(spec);
    ASSERT_TRUE(inter.completed);
    EXPECT_GT(inter.reboots, 50u);
    EXPECT_EQ(inter.logits, cont.logits);
    EXPECT_GT(inter.deadSeconds, inter.liveSeconds);
}

TEST(Intermittent, OkgTailsCapacitorBitIdentical)
{
    app::RunSpec spec;
    spec.net = "OkG";
    spec.impl = Impl::Tails;
    spec.power = app::PowerKind::Continuous;
    const auto cont = testEngine().runOne(spec);
    ASSERT_TRUE(cont.completed);

    spec.power = app::PowerKind::Cap100uF;
    const auto inter = testEngine().runOne(spec);
    ASSERT_TRUE(inter.completed);
    EXPECT_GT(inter.reboots, 20u);
    EXPECT_EQ(inter.logits, cont.logits);
}

TEST(Intermittent, BaseDoesNotCompleteOnHarvestedPower)
{
    app::RunSpec spec;
    spec.net = "HAR";
    spec.impl = Impl::Base;
    spec.power = app::PowerKind::Cap100uF;
    const auto r = testEngine().runOne(spec);
    EXPECT_FALSE(r.completed);
    EXPECT_TRUE(r.nonTerminating);
}

TEST(Intermittent, Tile128DoesNotCompleteAt100uF)
{
    app::RunSpec spec;
    spec.net = "OkG";
    spec.impl = Impl::Tile128;
    spec.power = app::PowerKind::Cap100uF;
    const auto r = testEngine().runOne(spec);
    EXPECT_FALSE(r.completed);
    EXPECT_TRUE(r.nonTerminating);
}

TEST(Intermittent, Tile32CompletesOnHarButNotMnist)
{
    app::RunSpec spec;
    spec.impl = Impl::Tile32;
    spec.power = app::PowerKind::Cap100uF;

    spec.net = "HAR";
    EXPECT_TRUE(testEngine().runOne(spec).completed);

    spec.net = "MNIST";
    const auto mnist = testEngine().runOne(spec);
    EXPECT_FALSE(mnist.completed);
    EXPECT_TRUE(mnist.nonTerminating);
}

TEST(Intermittent, SonicConsistentAcrossCapacitorSizes)
{
    app::RunSpec spec;
    spec.net = "HAR";
    spec.impl = Impl::Sonic;
    spec.power = app::PowerKind::Continuous;
    const auto golden = testEngine().runOne(spec);
    ASSERT_TRUE(golden.completed);
    for (auto power : {app::PowerKind::Cap50mF, app::PowerKind::Cap1mF,
                       app::PowerKind::Cap100uF}) {
        spec.power = power;
        const auto r = testEngine().runOne(spec);
        ASSERT_TRUE(r.completed) << app::powerName(power);
        EXPECT_EQ(r.logits, golden.logits) << app::powerName(power);
        // Live time is the same work regardless of the power system
        // (within the re-execution noise of failures).
        EXPECT_LT(std::abs(r.liveSeconds - golden.liveSeconds)
                      / golden.liveSeconds,
                  0.25)
            << app::powerName(power);
    }
}

TEST(Intermittent, TailsCalibrationShrinksTileOnSmallBuffer)
{
    // On continuous power calibration keeps the maximum tile; on a
    // tiny buffer it must halve at least once yet still complete.
    const auto spec = testutil::tinyNet();

    arch::Device cont_dev(arch::EnergyProfile::msp430fr5994(),
                          std::make_unique<arch::ContinuousPower>());
    dnn::DeviceNetwork cont_net(cont_dev, spec);
    cont_net.loadInput(testutil::tinyInput());
    tails::CalibrationInfo cont_cal;
    ASSERT_TRUE(tails::runTails(cont_net, &cont_cal).completed);

    // An energy buffer of ~2 uJ: too small for the maximum probe
    // tile, large enough for every per-iteration unit of the network.
    arch::Device small_dev(
        arch::EnergyProfile::msp430fr5994(),
        std::make_unique<arch::CapacitorPower>(15e-6, 0.5e-3));
    dnn::DeviceNetwork small_net(small_dev, spec);
    small_net.loadInput(testutil::tinyInput());
    tails::CalibrationInfo small_cal;
    ASSERT_TRUE(tails::runTails(small_net, &small_cal).completed);

    EXPECT_LT(small_cal.tileWords, cont_cal.tileWords);
}

} // namespace
} // namespace sonic::kernels
