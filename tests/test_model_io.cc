/**
 * @file
 * Tests for the serialized model format: save/load round trips must be
 * bit-exact (f64 weights, device logits, FRAM digests across kernels),
 * and malformed documents — wrong format/version, corrupt hex,
 * dimension mismatches, truncation — must be rejected with a
 * diagnostic, never crash or load garbage.
 */

#include <gtest/gtest.h>

#include "dnn/builder.hh"
#include "dnn/model_io.hh"
#include "dnn/zoo.hh"
#include "verify/oracle.hh"

namespace sonic::dnn
{
namespace
{

/** A tiny fixed net for corruption tests (one dense FC 4 x 16). */
NetworkSpec
verifyGoldenTiny()
{
    return NetworkBuilder("io-tiny", {1, 4, 4}).fc("out", 4).build();
}

/** Continuous-power oracle observation of a network. */
verify::Observation
observe(const NetworkSpec &net, const std::vector<i16> &input,
        kernels::Impl impl, const verify::Schedule &schedule = {})
{
    verify::LocalWorkload workload;
    workload.net = net;
    workload.input = input;
    workload.impl = impl;
    return verify::runSchedule(workload, schedule, true);
}

NetworkSpec
reparse(const NetworkSpec &net)
{
    std::string error;
    auto loaded = parseModel(modelJson(net), &error);
    EXPECT_TRUE(loaded.has_value()) << error;
    return *loaded;
}

TEST(ModelIo, JsonRoundTripIsByteIdentical)
{
    for (const auto &name : ModelZoo::instance().names()) {
        const auto &net = ModelZoo::instance().get(name).compressed();
        const std::string first = modelJson(net);
        std::string error;
        const auto loaded = parseModel(first, &error);
        ASSERT_TRUE(loaded.has_value()) << name << ": " << error;
        EXPECT_EQ(modelJson(*loaded), first) << name;
        EXPECT_EQ(loaded->name, net.name);
        EXPECT_EQ(loaded->numClasses, net.numClasses);
        EXPECT_EQ(loaded->layers.size(), net.layers.size());
    }
}

TEST(ModelIo, RoundTripBitIdenticalOnDeviceAcrossModelsAndKernels)
{
    const kernels::Impl impls[] = {
        kernels::Impl::Base, kernels::Impl::Tile8,
        kernels::Impl::Sonic, kernels::Impl::Tails};
    for (const auto &name : ModelZoo::instance().names()) {
        const auto &entry = ModelZoo::instance().get(name);
        const auto loaded = reparse(entry.compressed());
        const auto input = dnn::DeviceNetwork::quantizeInput(
            entry.dataset()[0].input);
        for (auto impl : impls) {
            const auto a = observe(entry.compressed(), input, impl);
            const auto b = observe(loaded, input, impl);
            ASSERT_TRUE(a.completed)
                << name << "/" << kernels::implName(impl);
            EXPECT_EQ(a.logits, b.logits)
                << name << "/" << kernels::implName(impl);
            EXPECT_EQ(a.cycles, b.cycles)
                << name << "/" << kernels::implName(impl);
            EXPECT_EQ(a.opInstances, b.opInstances)
                << name << "/" << kernels::implName(impl);
            EXPECT_EQ(a.finalNvmDigest, b.finalNvmDigest)
                << name << "/" << kernels::implName(impl);
        }
    }
}

TEST(ModelIo, RoundTripPreservesRebootDigestChainUnderFailures)
{
    const auto &entry = ModelZoo::instance().get("golden");
    const auto loaded = reparse(entry.compressed());
    const auto input = dnn::DeviceNetwork::quantizeInput(
        entry.dataset()[0].input);
    const verify::Schedule schedule = {500, 1500, 2500};
    const auto a =
        observe(entry.compressed(), input, kernels::Impl::Sonic,
                schedule);
    const auto b = observe(loaded, input, kernels::Impl::Sonic,
                           schedule);
    ASSERT_TRUE(a.completed);
    EXPECT_GT(a.reboots, 0u);
    EXPECT_EQ(a.reboots, b.reboots);
    EXPECT_EQ(a.logits, b.logits);
    EXPECT_EQ(a.rebootDigests, b.rebootDigests);
    EXPECT_EQ(a.finalNvmDigest, b.finalNvmDigest);
}

TEST(ModelIo, FileRoundTripAndZooRegistration)
{
    const auto net = deepFcNet("file-roundtrip-model", 16, 2, 8, 4);
    const std::string path =
        ::testing::TempDir() + "sonic_model_roundtrip.json";
    std::string error;
    ASSERT_TRUE(saveModelFile(net, path, &error)) << error;
    const auto loaded = loadModelFile(path, &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_EQ(modelJson(*loaded), modelJson(net));

    auto &zoo = ModelZoo::instance();
    if (!zoo.contains("file-roundtrip-model")) {
        ASSERT_TRUE(loadModelIntoZoo(path, zoo, &error)) << error;
        EXPECT_EQ(zoo.get("file-roundtrip-model").meta().family,
                  "loaded");
    }
    // A second load of the same name is rejected, not overwritten.
    EXPECT_FALSE(loadModelIntoZoo(path, zoo, &error));
    EXPECT_NE(error.find("already registered"), std::string::npos);
}

TEST(ModelIo, MissingFileIsAnError)
{
    std::string error;
    EXPECT_FALSE(
        loadModelFile("/no/such/dir/model.json", &error).has_value());
    EXPECT_NE(error.find("cannot read"), std::string::npos);
}

TEST(ModelIo, RejectsNonJsonAndTrailingGarbage)
{
    std::string error;
    EXPECT_FALSE(parseModel("not json at all", &error).has_value());
    EXPECT_NE(error.find("JSON parse error"), std::string::npos);

    const auto good = modelJson(verifyGoldenTiny());
    EXPECT_FALSE(parseModel(good + "extra", &error).has_value());
    EXPECT_NE(error.find("trailing garbage"), std::string::npos);
}

TEST(ModelIo, RejectsWrongFormatAndUnknownVersions)
{
    auto good = modelJson(verifyGoldenTiny());
    std::string error;

    std::string wrong_format = good;
    wrong_format.replace(wrong_format.find("sonic-model"),
                         std::string("sonic-model").size(),
                         "other-format");
    EXPECT_FALSE(parseModel(wrong_format, &error).has_value());
    EXPECT_NE(error.find("not a sonic-model"), std::string::npos);

    const std::string tag =
        "\"version\": " + std::to_string(kModelFormatVersion);
    ASSERT_NE(good.find(tag), std::string::npos);

    std::string future = good;
    future.replace(future.find(tag), tag.size(), "\"version\": 3");
    EXPECT_FALSE(parseModel(future, &error).has_value());
    EXPECT_NE(error.find("unsupported model format version 3"),
              std::string::npos);

    std::string ancient = good;
    ancient.replace(ancient.find(tag), tag.size(), "\"version\": 0");
    EXPECT_FALSE(parseModel(ancient, &error).has_value());
    EXPECT_NE(error.find("unsupported model format version 0"),
              std::string::npos);
}

TEST(ModelIo, RejectsCorruptBlobsAndDimensionMismatches)
{
    auto good = modelJson(verifyGoldenTiny());
    std::string error;

    // Truncate one base64 character out of the first blob: no longer
    // a multiple of 4 characters.
    const auto data = good.find("\"data\": \"");
    ASSERT_NE(data, std::string::npos);
    std::string truncated = good;
    truncated.erase(data + 9, 1);
    EXPECT_FALSE(parseModel(truncated, &error).has_value());
    EXPECT_NE(error.find("multiple of 4"), std::string::npos);

    // Corrupt a character into a non-base64 one.
    std::string corrupt = good;
    corrupt[data + 10] = '~';
    EXPECT_FALSE(parseModel(corrupt, &error).has_value());
    EXPECT_NE(error.find("invalid base64 character"),
              std::string::npos);

    // A whole valid-looking group whose byte count is not a whole
    // number of f64s (4 chars -> 3 bytes).
    std::string short_blob = good;
    short_blob.replace(data + 9, short_blob.find('"', data + 9)
                                     - (data + 9),
                       "AAAA");
    EXPECT_FALSE(parseModel(short_blob, &error).has_value());
    EXPECT_NE(error.find("not a whole number of f64"),
              std::string::npos);

    // Misplaced padding inside the blob.
    std::string bad_pad = good;
    bad_pad[data + 9] = '=';
    EXPECT_FALSE(parseModel(bad_pad, &error).has_value());
    EXPECT_TRUE(error.find("padding") != std::string::npos
                || error.find("base64") != std::string::npos)
        << error;

    // Declare the wrong dimensions for the (intact) blob.
    const std::string rows_tag = "\"rows\": 4";
    std::string mismatched = good;
    ASSERT_NE(mismatched.find(rows_tag), std::string::npos);
    mismatched.replace(mismatched.find(rows_tag), rows_tag.size(),
                       "\"rows\": 5");
    EXPECT_FALSE(parseModel(mismatched, &error).has_value());
    EXPECT_TRUE(error.find("blob holds") != std::string::npos
                || error.find("FC expects") != std::string::npos)
        << error;
}

TEST(ModelIo, ReadsLegacyV1HexDocumentsBitExactly)
{
    // v1 (hex blobs) is still a supported read format: a v1 document
    // of any zoo model must load to the identical network — the same
    // v2 re-serialization, logits, cycles and FRAM digests.
    for (const auto &name : {std::string("golden"),
                             std::string("DeepFC-6")}) {
        const auto &entry = ModelZoo::instance().get(name);
        const std::string v1 =
            testhooks::modelJsonV1(entry.compressed());
        EXPECT_NE(v1.find("\"version\": 1"), std::string::npos);
        std::string error;
        const auto loaded = parseModel(v1, &error);
        ASSERT_TRUE(loaded.has_value()) << name << ": " << error;
        EXPECT_EQ(modelJson(*loaded), modelJson(entry.compressed()))
            << name;

        const auto input = dnn::DeviceNetwork::quantizeInput(
            entry.dataset()[0].input);
        const auto a =
            observe(entry.compressed(), input, kernels::Impl::Sonic);
        const auto b = observe(*loaded, input, kernels::Impl::Sonic);
        EXPECT_EQ(a.logits, b.logits) << name;
        EXPECT_EQ(a.cycles, b.cycles) << name;
        EXPECT_EQ(a.finalNvmDigest, b.finalNvmDigest) << name;
    }

    // v1 corruption diagnostics still work (hex-specific messages).
    const std::string v1 =
        testhooks::modelJsonV1(verifyGoldenTiny());
    const auto data = v1.find("\"data\": \"");
    ASSERT_NE(data, std::string::npos);
    std::string error;
    std::string truncated = v1;
    truncated.erase(data + 9, 1);
    EXPECT_FALSE(parseModel(truncated, &error).has_value());
    EXPECT_NE(error.find("multiple of 16"), std::string::npos);
    std::string corrupt = v1;
    corrupt[data + 10] = 'z';
    EXPECT_FALSE(parseModel(corrupt, &error).has_value());
    EXPECT_NE(error.find("invalid hex digit"), std::string::npos);
}

TEST(ModelIo, V2FilesAreSmallerThanV1)
{
    const auto &entry = ModelZoo::instance().get("golden");
    const std::string v1 = testhooks::modelJsonV1(entry.compressed());
    const std::string v2 = modelJson(entry.compressed());
    // base64 is 10.67 chars per weight vs hex's 16: ~1.5x on the raw
    // blob, approaching 2x once shared structure is amortized on
    // weight-heavy models. The tiny golden net still shrinks clearly.
    EXPECT_LT(v2.size(), v1.size() * 0.80) << v2.size() << " vs "
                                           << v1.size();
}

TEST(ModelIo, RejectsMissingFieldsAndBadShapes)
{
    std::string error;
    EXPECT_FALSE(
        parseModel("{\"format\": \"sonic-model\", \"version\": 1}",
                   &error)
            .has_value());
    EXPECT_NE(error.find("missing"), std::string::npos);

    // A dimensionally inconsistent but well-formed document: an FC
    // that expects more inputs than the input shape provides.
    tensor::Matrix w(2, 9);
    NetworkSpec bad;
    bad.name = "bad-shape";
    bad.input = {1, 2, 2};
    bad.numClasses = 2;
    bad.layers.push_back({"fc", DenseFcLayer{w}, false, false});
    EXPECT_FALSE(parseModel(modelJson(bad), &error).has_value());
    EXPECT_NE(error.find("FC expects"), std::string::npos);
}

} // namespace
} // namespace sonic::dnn
